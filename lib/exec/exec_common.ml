(* Algorithmic cores shared by the two execution engines.

   The row engine (Executor) and the batch engine (Batch_exec) present
   different operator interfaces — tuple-at-a-time vs batch-at-a-time —
   but must implement the *same* algorithms underneath: the differential
   test harness (test/suite_batch.ml) holds them to identical multiset
   semantics, and the spilling behavior under low memory (Grace hash
   join partitioning, external sort runs) must be observable through the
   buffer pool in both.  Those cores live here. *)

module Interval = Dqep_util.Interval
module Schema = Dqep_algebra.Schema
module Predicate = Dqep_algebra.Predicate
module Catalog = Dqep_catalog.Catalog
module Env = Dqep_cost.Env
module Database = Dqep_storage.Database
module Heap_file = Dqep_storage.Heap_file
module Trace = Dqep_obs.Trace
module Counter = Dqep_obs.Counter

type tuple = int array

(* --- engine selection ---------------------------------------------------- *)

type engine = Row | Batch

let engine_name = function Row -> "row" | Batch -> "batch"

let engine_of_string = function
  | "row" -> Some Row
  | "batch" -> Some Batch
  | _ -> None

(* Process-wide defaults, overridable per call site.  DQEP_ENGINE lets CI
   push every existing suite through the batch engine without touching
   the tests; DQEP_WORKERS arms the exchange operator's scheduler. *)
let default_engine () =
  match Option.bind (Sys.getenv_opt "DQEP_ENGINE") engine_of_string with
  | Some e -> e
  | None -> Row

let default_workers () =
  match Option.bind (Sys.getenv_opt "DQEP_WORKERS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 1

(* Per-run execution profile, surfaced through Executor.run_stats, the
   CLI and the benchmark harness. *)
type exec_profile = {
  engine : engine;
  batches : int;          (* batches delivered at the plan root *)
  max_batch_rows : int;
  rows_per_batch : float; (* mean selected rows per delivered batch *)
  partitions : int;       (* partitions of the widest exchange, 0 if none *)
  workers : int;          (* scheduler workers available to exchanges *)
}

let row_profile =
  { engine = Row; batches = 0; max_batch_rows = 0; rows_per_batch = 0.;
    partitions = 0; workers = 1 }

let pp_profile ppf p =
  Format.fprintf ppf "%s engine: %d batches, %.1f rows/batch, %d partitions, %d workers"
    (engine_name p.engine) p.batches p.rows_per_batch p.partitions p.workers

(* --- small helpers ------------------------------------------------------- *)

let memory_pages env =
  Int.max 2 (int_of_float (Interval.mid (Env.memory_pages env)))

(* The working-set bound for the spilling cores: the environment's memory
   grant, further narrowed by the governor's remaining memory headroom.
   This is the graceful-degradation half of the memory budget — under
   pressure the cores spill *earlier* (smaller in-memory partitions and
   runs) instead of aborting; only an allocation that cannot fit even
   after maximal partitioning raises [Governor.Memory_exceeded]. *)
let governed_memory_pages env gov ~page_bytes =
  let mem = memory_pages env in
  match Governor.headroom gov with
  | None -> mem
  | Some bytes -> Int.max 2 (Int.min mem (bytes / Int.max 1 page_bytes))

let base_schema db rel =
  Schema.of_relation (Catalog.relation_exn (Database.catalog db) rel)

let tuples_per_page db width =
  Heap_file.tuples_per_page
    ~page_bytes:(Catalog.page_bytes (Database.catalog db))
    ~record_bytes:(Int.max 1 width)

let spill db width tuples =
  let heap =
    Heap_file.create (Database.pool db) ~tuples_per_page:(tuples_per_page db width)
  in
  List.iter (fun t -> ignore (Heap_file.append (Database.pool db) heap t)) tuples;
  heap

let unspill db heap =
  let acc = ref [] in
  Heap_file.scan (Database.pool db) heap (fun _ t -> acc := t :: !acc);
  List.rev !acc

let join_key ~left_schema preds side tuple =
  List.map
    (fun (p : Predicate.equi) ->
      match side with
      | `Left -> tuple.(Schema.position_exn left_schema p.Predicate.left)
      | `Right r_schema -> tuple.(Schema.position_exn r_schema p.Predicate.right))
    preds

(* --- hash join core (Grace partitioning under low memory) ---------------- *)

(* Join two fully materialized inputs.  If the build side fits in the
   memory grant, a single in-memory hash table; otherwise fan both sides
   out to temporary heap files and recurse per partition.  [emit] is
   called once per joined pair. *)
let hash_join_core ?(gov = Governor.none) ?(obs = Trace.null) db env
    ~left_schema ~right_schema ~left_width ~right_width ~preds ~emit build
    probe =
  let page_bytes = Catalog.page_bytes (Database.catalog db) in
  let build_key = join_key ~left_schema preds `Left in
  let probe_key = join_key ~left_schema preds (`Right right_schema) in
  let join_in_memory build probe =
    (* The hash table over the build side is the core's materialization:
       charge it against the memory budget for the duration of the probe.
       A partition that cannot fit even here (after maximal Grace
       partitioning under budget pressure) aborts with Memory_exceeded. *)
    Governor.with_charge gov (List.length build * Int.max 1 left_width)
      (fun () ->
        let table = Hashtbl.create (List.length build + 1) in
        List.iter (fun t -> Hashtbl.add table (build_key t) t) build;
        List.iter
          (fun r ->
            Governor.check gov;
            List.iter (fun l -> emit l r) (Hashtbl.find_all table (probe_key r)))
          probe)
  in
  let rec join_partition depth build probe =
    (* Re-read the grant per partition: governed headroom shrinks as
       sibling queries charge the shared pool. *)
    let mem = governed_memory_pages env gov ~page_bytes in
    let build_pages = List.length build * left_width / page_bytes in
    if build_pages <= mem - 1 || depth >= 3 then join_in_memory build probe
    else begin
      (* Grace hash join: fan out both inputs to temporary files. *)
      let fanout = Int.max 2 (mem - 1) in
      Trace.add obs Counter.Spill_partitions fanout;
      Trace.add obs Counter.Spilled_tuples
        (List.length build + List.length probe);
      let part key tuples width =
        let buckets = Array.make fanout [] in
        List.iter
          (fun t ->
            let h = Hashtbl.hash (depth, key t) mod fanout in
            buckets.(h) <- t :: buckets.(h))
          tuples;
        Array.map (fun ts -> spill db width (List.rev ts)) buckets
      in
      let build_parts = part build_key build left_width in
      let probe_parts = part probe_key probe right_width in
      Array.iteri
        (fun i bheap ->
          join_partition (depth + 1) (unspill db bheap) (unspill db probe_parts.(i)))
        build_parts
    end
  in
  join_partition 0 build probe

(* --- sort core (external runs under low memory) -------------------------- *)

let compare_on positions (a : tuple) (b : tuple) =
  let rec go = function
    | [] -> 0
    | p :: rest -> (
      match Int.compare a.(p) b.(p) with 0 -> go rest | c -> c)
  in
  go positions

(* Stable sort, spilling sorted runs to temporary heap files when the
   input exceeds the memory grant, then merging in one pass. *)
let sort_core ?(gov = Governor.none) ?(obs = Trace.null) db env ~width
    ~compare_tuples tuples =
  let page_bytes = Catalog.page_bytes (Database.catalog db) in
  let mem = governed_memory_pages env gov ~page_bytes in
  let pages = List.length tuples * width / page_bytes in
  if pages <= mem then
    (* In-memory sort: the whole input is the working set. *)
    Governor.with_charge gov (List.length tuples * Int.max 1 width) (fun () ->
        List.stable_sort compare_tuples tuples)
  else begin
    let per_run = Int.max 1 (mem * page_bytes / Int.max 1 width) in
    let rec runs acc = function
      | [] -> List.rev acc
      | rest ->
        Governor.check gov;
        let run = List.filteri (fun i _ -> i < per_run) rest in
        let remainder = List.filteri (fun i _ -> i >= per_run) rest in
        let sorted =
          (* Each run is sized to the governed grant; charge it while
             sorting so a shrinking shared pool still surfaces. *)
          Governor.with_charge gov (List.length run * Int.max 1 width)
            (fun () -> List.stable_sort compare_tuples run)
        in
        Trace.incr obs Counter.Spill_runs;
        Trace.add obs Counter.Spilled_tuples (List.length sorted);
        runs (spill db width sorted :: acc) remainder
    in
    let run_files = runs [] tuples in
    let sorted_runs = List.map (fun h -> unspill db h) run_files in
    let rec merge lists =
      match lists with
      | [] -> []
      | [ l ] -> l
      | ls ->
        (* K-way merge in one pass; buffer constraints are modelled by
           the I/O already accounted on spill. *)
        let rec pick best rest = function
          | [] -> (best, List.rev rest)
          | [] :: more -> pick best rest more
          | (h :: _ as l) :: more -> (
            match best with
            | Some (bh, _) when compare_tuples bh h <= 0 -> pick best (l :: rest) more
            | _ -> (
              match best with
              | None -> pick (Some (h, l)) rest more
              | Some (_, bl) -> pick (Some (h, l)) (bl :: rest) more))
        in
        (match pick None [] ls with
        | None, _ -> []
        | Some (h, winner), others ->
          let winner_rest = List.tl winner in
          h :: merge (winner_rest :: others))
    in
    merge sorted_runs
  end
