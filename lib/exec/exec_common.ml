(* Algorithmic cores shared by the two execution engines.

   The row engine (Executor) and the batch engine (Batch_exec) present
   different operator interfaces — tuple-at-a-time vs batch-at-a-time —
   but must implement the *same* algorithms underneath: the differential
   test harness (test/suite_batch.ml) holds them to identical multiset
   semantics, and the spilling behavior under low memory (Grace hash
   join partitioning, external sort runs) must be observable through the
   buffer pool in both.  Those cores live here.

   The joining and sorting cores optionally go wide on a [Scheduler]
   morsel pool: a radix partition pass fans a hash join out to
   independent per-partition build+probe morsels, and an in-memory sort
   fans out fixed-size chunk sorts merged stably on the consumer.  The
   sequential paths are byte-for-byte the old algorithms, and the
   parallel ones produce the same multiset (joins) or the identical
   stable order (sorts). *)

module Interval = Dqep_util.Interval
module Schema = Dqep_algebra.Schema
module Predicate = Dqep_algebra.Predicate
module Catalog = Dqep_catalog.Catalog
module Env = Dqep_cost.Env
module Database = Dqep_storage.Database
module Heap_file = Dqep_storage.Heap_file
module Trace = Dqep_obs.Trace
module Counter = Dqep_obs.Counter

type tuple = int array

(* --- engine selection ---------------------------------------------------- *)

type engine = Row | Batch

let engine_name = function Row -> "row" | Batch -> "batch"

let engine_of_string = function
  | "row" -> Some Row
  | "batch" -> Some Batch
  | _ -> None

(* Process-wide defaults, overridable per call site.  DQEP_ENGINE lets CI
   push every existing suite through the batch engine without touching
   the tests; DQEP_WORKERS arms the exchange operator's scheduler. *)
let default_engine () =
  match Option.bind (Sys.getenv_opt "DQEP_ENGINE") engine_of_string with
  | Some e -> e
  | None -> Row

let default_workers () =
  match Option.bind (Sys.getenv_opt "DQEP_WORKERS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 1

(* --- morsel work accounting ---------------------------------------------- *)

(* Every morsel reports the work it performed in abstract, deterministic
   units (tuples touched, weighted page reads, comparison passes).  The
   decomposition into morsels is fixed-size — independent of the worker
   count — so the same query always yields the same cost list, and the
   benchmark can derive a host-independent scaling curve from it: the
   simulated completion time at [k] workers is the serial units plus a
   greedy longest-processing-time makespan of the morsel costs over [k]
   bins.  (On a host with fewer cores than workers, wall-clock time
   cannot show parallel speedup at all, so the gate in `bench exec
   --check` runs against this schedule model; real timings are recorded
   alongside it.) *)
type work_log = {
  mutable serial_units : int; (* consumer-thread work; single-writer *)
  morsels : int list Atomic.t; (* per-morsel units, lock-free prepend *)
}

let work_log () = { serial_units = 0; morsels = Atomic.make [] }

let log_serial log u =
  match log with None -> () | Some l -> l.serial_units <- l.serial_units + u

let log_morsel log u =
  match log with
  | None -> ()
  | Some l ->
    let rec go () =
      let cur = Atomic.get l.morsels in
      if not (Atomic.compare_and_set l.morsels cur (u :: cur)) then go ()
    in
    go ()

let morsel_units l = Array.of_list (Atomic.get l.morsels)

(* ceil(log2 n), at least 1: the comparison-pass weight of sorting or
   merging [n] tuples. *)
let ilog2 n =
  let rec go acc v = if v <= 1 then Int.max 1 acc else go (acc + 1) ((v + 1) / 2) in
  go 0 n

(* Per-run execution profile, surfaced through Executor.run_stats, the
   CLI and the benchmark harness. *)
type exec_profile = {
  engine : engine;
  batches : int;          (* batches delivered at the plan root *)
  max_batch_rows : int;
  rows_per_batch : float; (* mean selected rows per delivered batch *)
  partitions : int;       (* morsels of the widest exchange, 0 if none *)
  workers : int;          (* scheduler workers available to exchanges *)
  serial_units : int;     (* work performed on the consumer thread *)
  morsel_units_ : int array; (* work per morsel, for the schedule model *)
}

let row_profile =
  { engine = Row; batches = 0; max_batch_rows = 0; rows_per_batch = 0.;
    partitions = 0; workers = 1; serial_units = 0; morsel_units_ = [||] }

let pp_profile ppf p =
  Format.fprintf ppf "%s engine: %d batches, %.1f rows/batch, %d partitions, %d workers"
    (engine_name p.engine) p.batches p.rows_per_batch p.partitions p.workers

(* --- small helpers ------------------------------------------------------- *)

let memory_pages env =
  Int.max 2 (int_of_float (Interval.mid (Env.memory_pages env)))

(* The working-set bound for the spilling cores: the environment's memory
   grant, further narrowed by the governor's remaining memory headroom.
   This is the graceful-degradation half of the memory budget — under
   pressure the cores spill *earlier* (smaller in-memory partitions and
   runs) instead of aborting; only an allocation that cannot fit even
   after maximal partitioning raises [Governor.Memory_exceeded]. *)
let governed_memory_pages env gov ~page_bytes =
  let mem = memory_pages env in
  match Governor.headroom gov with
  | None -> mem
  | Some bytes -> Int.max 2 (Int.min mem (bytes / Int.max 1 page_bytes))

let base_schema db rel =
  Schema.of_relation (Catalog.relation_exn (Database.catalog db) rel)

let tuples_per_page db width =
  Heap_file.tuples_per_page
    ~page_bytes:(Catalog.page_bytes (Database.catalog db))
    ~record_bytes:(Int.max 1 width)

let spill db width tuples =
  let heap =
    Heap_file.create (Database.pool db) ~tuples_per_page:(tuples_per_page db width)
  in
  List.iter (fun t -> ignore (Heap_file.append (Database.pool db) heap t)) tuples;
  heap

let unspill db heap =
  let acc = ref [] in
  Heap_file.scan (Database.pool db) heap (fun _ t -> acc := t :: !acc);
  List.rev !acc

let join_key ~left_schema preds side tuple =
  List.map
    (fun (p : Predicate.equi) ->
      match side with
      | `Left -> tuple.(Schema.position_exn left_schema p.Predicate.left)
      | `Right r_schema -> tuple.(Schema.position_exn r_schema p.Predicate.right))
    preds

(* Below this many input tuples a parallel core runs sequentially: the
   fan-out overhead would dominate.  Fixed, so morsel decomposition never
   depends on the worker count. *)
let parallel_threshold = 2048

(* Radix fan-out of the parallel hash join's partition pass. *)
let radix_fanout = 16

(* Tuples per parallel sort chunk. *)
let sort_chunk = 2048

let run_morsels sched ~gov tasks =
  let job = Scheduler.submit sched ~poll:(fun () -> Governor.check gov) tasks in
  Scheduler.wait job;
  match Scheduler.fault job with Some e -> raise e | None -> ()

(* --- hash join core (Grace partitioning under low memory) ---------------- *)

(* Join two fully materialized inputs.  If the build side fits in the
   memory grant, a single in-memory hash table; otherwise fan both sides
   out to temporary heap files and recurse per partition.  [emit] is
   called once per joined pair, on the calling thread.

   With a parallel [sched] and enough input, a radix partition pass
   splits both sides [radix_fanout] ways first and each partition joins
   as one morsel (recursing into the same Grace spilling if it still
   exceeds the governed grant); per-partition outputs are drained in
   partition order on the caller. *)
let hash_join_core ?(gov = Governor.none) ?(obs = Trace.null)
    ?(sched = Scheduler.sequential) ?log db env ~left_schema ~right_schema
    ~left_width ~right_width ~preds ~emit build probe =
  let page_bytes = Catalog.page_bytes (Database.catalog db) in
  let build_key = join_key ~left_schema preds `Left in
  let probe_key = join_key ~left_schema preds (`Right right_schema) in
  let join_in_memory ~emit build probe =
    (* The hash table over the build side is the core's materialization:
       charge it against the memory budget for the duration of the probe.
       A partition that cannot fit even here (after maximal Grace
       partitioning under budget pressure) aborts with Memory_exceeded. *)
    Governor.with_charge gov (List.length build * Int.max 1 left_width)
      (fun () ->
        let table = Hashtbl.create (List.length build + 1) in
        List.iter (fun t -> Hashtbl.add table (build_key t) t) build;
        List.iter
          (fun r ->
            Governor.check gov;
            List.iter (fun l -> emit l r) (Hashtbl.find_all table (probe_key r)))
          probe)
  in
  let rec join_partition ~emit depth build probe =
    (* Re-read the grant per partition: governed headroom shrinks as
       sibling queries charge the shared pool. *)
    let mem = governed_memory_pages env gov ~page_bytes in
    let build_pages = List.length build * left_width / page_bytes in
    if build_pages <= mem - 1 || depth >= 3 then join_in_memory ~emit build probe
    else begin
      (* Grace hash join: fan out both inputs to temporary files. *)
      let fanout = Int.max 2 (mem - 1) in
      Trace.add obs Counter.Spill_partitions fanout;
      Trace.add obs Counter.Spilled_tuples
        (List.length build + List.length probe);
      let part key tuples width =
        let buckets = Array.make fanout [] in
        List.iter
          (fun t ->
            let h = Hashtbl.hash (depth, key t) mod fanout in
            buckets.(h) <- t :: buckets.(h))
          tuples;
        Array.map (fun ts -> spill db width (List.rev ts)) buckets
      in
      let build_parts = part build_key build left_width in
      let probe_parts = part probe_key probe right_width in
      Array.iteri
        (fun i bheap ->
          join_partition ~emit (depth + 1) (unspill db bheap)
            (unspill db probe_parts.(i)))
        build_parts
    end
  in
  let nb = List.length build and np = List.length probe in
  if (not (Scheduler.is_parallel sched)) || nb + np < parallel_threshold then begin
    log_serial log (nb + np);
    join_partition ~emit 0 build probe
  end
  else begin
    (* Radix partition both sides in one serial pass (cheap: one hash and
       one cons per tuple), then join each partition as a morsel. *)
    let bparts = Array.make radix_fanout [] in
    let pparts = Array.make radix_fanout [] in
    let scatter key parts tuples =
      List.iter
        (fun t ->
          let h = Hashtbl.hash (key t) land (radix_fanout - 1) in
          parts.(h) <- t :: parts.(h))
        tuples
    in
    scatter build_key bparts build;
    scatter probe_key pparts probe;
    log_serial log (nb + np);
    let outs = Array.make radix_fanout [] in
    let tasks =
      Array.init radix_fanout (fun i () ->
          let b = List.rev bparts.(i) and p = List.rev pparts.(i) in
          let pairs = ref [] in
          let matched = ref 0 in
          join_partition
            ~emit:(fun l r ->
              incr matched;
              pairs := (l, r) :: !pairs)
            1 b p;
          outs.(i) <- List.rev !pairs;
          log_morsel log (List.length b + List.length p + !matched))
    in
    run_morsels sched ~gov tasks;
    (* Drain in partition order on the caller: [emit] stays a plain
       consumer-thread callback, exactly as in the sequential path. *)
    let emitted = ref 0 in
    Array.iter
      (fun pairs ->
        List.iter
          (fun (l, r) ->
            incr emitted;
            emit l r)
          pairs)
      outs;
    log_serial log !emitted
  end

(* --- sort core (external runs under low memory) -------------------------- *)

let compare_on positions (a : tuple) (b : tuple) =
  let rec go = function
    | [] -> 0
    | p :: rest -> (
      match Int.compare a.(p) b.(p) with 0 -> go rest | c -> c)
  in
  go positions

(* Split a list into consecutive chunks of [size], preserving order. *)
let chunk_list size l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

(* Stable multi-way merge by pairwise passes: [List.merge] keeps the
   left operand's elements first on ties and the run list is in input
   order, so the result is the unique stable order — identical to what
   [List.stable_sort] over the concatenated input produces. *)
let rec merge_runs compare_tuples = function
  | [] -> []
  | [ l ] -> l
  | ls ->
    let rec pass = function
      | a :: b :: rest -> List.merge compare_tuples a b :: pass rest
      | tail -> tail
    in
    merge_runs compare_tuples (pass ls)

(* Stable sort, spilling sorted runs to temporary heap files when the
   input exceeds the memory grant, then merging stably.  With a parallel
   [sched], an in-memory sort of a large input fans out fixed-size chunk
   sorts as morsels and merges on the consumer — same charge, same
   output order as the sequential stable sort. *)
let sort_core ?(gov = Governor.none) ?(obs = Trace.null)
    ?(sched = Scheduler.sequential) ?log db env ~width ~compare_tuples tuples =
  let page_bytes = Catalog.page_bytes (Database.catalog db) in
  let mem = governed_memory_pages env gov ~page_bytes in
  let n = List.length tuples in
  let pages = n * width / page_bytes in
  if pages <= mem then
    (* In-memory sort: the whole input is the working set. *)
    Governor.with_charge gov (n * Int.max 1 width) (fun () ->
        if Scheduler.is_parallel sched && n >= parallel_threshold then begin
          let chunks = Array.of_list (chunk_list sort_chunk tuples) in
          let outs = Array.make (Array.length chunks) [] in
          let tasks =
            Array.init (Array.length chunks) (fun i () ->
                let c = chunks.(i) in
                outs.(i) <- List.stable_sort compare_tuples c;
                log_morsel log (List.length c * ilog2 (List.length c)))
          in
          run_morsels sched ~gov tasks;
          log_serial log (n * ilog2 (Array.length chunks));
          merge_runs compare_tuples (Array.to_list outs)
        end
        else begin
          log_serial log (n * ilog2 n);
          List.stable_sort compare_tuples tuples
        end)
  else begin
    let per_run = Int.max 1 (mem * page_bytes / Int.max 1 width) in
    let rec runs acc = function
      | [] -> List.rev acc
      | rest ->
        Governor.check gov;
        let run = List.filteri (fun i _ -> i < per_run) rest in
        let remainder = List.filteri (fun i _ -> i >= per_run) rest in
        let sorted =
          (* Each run is sized to the governed grant; charge it while
             sorting so a shrinking shared pool still surfaces. *)
          Governor.with_charge gov (List.length run * Int.max 1 width)
            (fun () -> List.stable_sort compare_tuples run)
        in
        Trace.incr obs Counter.Spill_runs;
        Trace.add obs Counter.Spilled_tuples (List.length sorted);
        runs (spill db width sorted :: acc) remainder
    in
    let run_files = runs [] tuples in
    let sorted_runs = List.map (fun h -> unspill db h) run_files in
    log_serial log (n * ilog2 n + (n * ilog2 (List.length run_files)));
    merge_runs compare_tuples sorted_runs
  end
