(* Columnar tuple batches with a selection vector.

   The unit of the vectorized execution engine (Batch_exec): a fixed-
   capacity block of tuples stored column-major, plus a selection vector
   naming the rows that are logically present.  Operators work a batch at
   a time, so the per-tuple interpretation overhead of the row engine
   (one closure call per operator per tuple) is paid once per ~1024
   tuples instead.

   Columns are contiguous [Bigarray] int vectors: unboxed, cache-dense,
   and off the OCaml heap — the GC never scans a column, hot filter/join
   loops are plain machine loads with no write barriers, and a batch
   staged by one exchange worker can be consumed by another domain
   without touching shared heap state.

   Invariants:
   - every column array has length [capacity]; rows [0, len) are
     materialized;
   - [sel] is [None] when all materialized rows are selected (the dense
     case), or [Some v] where [v] holds strictly increasing physical row
     indices < [len];
   - [len <= capacity] always (checked, the qcheck suite leans on it). *)

module Schema = Dqep_algebra.Schema
module A1 = Bigarray.Array1

type tuple = int array

type col = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

let default_capacity = 1024

type t = {
  schema : Schema.t;
  capacity : int;
  cols : col array;
  mutable len : int;
  mutable sel : int array option;
}

let make_col capacity : col =
  A1.create Bigarray.int Bigarray.c_layout capacity

let create ?(capacity = default_capacity) schema =
  if capacity <= 0 then invalid_arg "Batch.create: capacity <= 0";
  { schema;
    capacity;
    cols = Array.init (Schema.width schema) (fun _ -> make_col capacity);
    len = 0;
    sel = None }

let schema t = t.schema
let capacity t = t.capacity
let width t = Array.length t.cols
let physical_length t = t.len

(* Number of logically present (selected) rows. *)
let length t =
  match t.sel with None -> t.len | Some v -> Array.length v

let is_empty t = length t = 0
let is_full t = t.len >= t.capacity
let is_dense t = t.sel = None

(* Physical row index of the [i]-th selected row. *)
let row t i = match t.sel with None -> i | Some v -> v.(i)

let get t ~col ~i = A1.unsafe_get t.cols.(col) (row t i)

(* Direct physical access, for kernels that already hold a physical row
   index (e.g. the predicate passed to [refine]). *)
let get_phys t ~col ~row = A1.unsafe_get t.cols.(col) row

let tuple t i =
  let r = row t i in
  Array.init (width t) (fun c -> A1.unsafe_get t.cols.(c) r)

(* Append one tuple.  Only dense batches grow: pushing into a filtered
   batch would silently deselect the new row. *)
let push t tuple =
  if t.sel <> None then invalid_arg "Batch.push: batch has a selection vector";
  if is_full t then invalid_arg "Batch.push: batch full";
  if Array.length tuple <> width t then invalid_arg "Batch.push: width mismatch";
  Array.iteri (fun c v -> A1.unsafe_set t.cols.(c) t.len v) tuple;
  t.len <- t.len + 1

(* Install a selection vector of physical row indices (must be strictly
   increasing and < len; composes with an existing selection). *)
let set_selection t indices =
  let bound = t.len in
  Array.iteri
    (fun i r ->
      if r < 0 || r >= bound then invalid_arg "Batch.set_selection: out of range";
      if i > 0 && indices.(i - 1) >= r then
        invalid_arg "Batch.set_selection: not strictly increasing")
    indices;
  t.sel <- Some indices

(* Keep only the selected rows for which [keep] holds (given the physical
   row index).  This is the vectorized filter kernel: one pass over the
   selection, no tuple materialization. *)
let refine t keep =
  let n = length t in
  let out = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let r = row t i in
    if keep r then begin
      out.(!k) <- r;
      incr k
    end
  done;
  t.sel <- Some (Array.sub out 0 !k)

let iter f t =
  let n = length t in
  for i = 0 to n - 1 do
    f (row t i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun r -> acc := f !acc r) t;
  !acc

let to_tuples t =
  let acc = ref [] in
  let n = length t in
  for i = n - 1 downto 0 do
    acc := tuple t i :: !acc
  done;
  !acc

(* Chunk a tuple list into dense batches of at most [capacity] rows. *)
let of_tuples ?(capacity = default_capacity) schema tuples =
  if capacity <= 0 then invalid_arg "Batch.of_tuples: capacity <= 0";
  let rec go acc current = function
    | [] -> List.rev (if is_empty current then acc else current :: acc)
    | tup :: rest ->
      if is_full current then go (current :: acc) (create ~capacity schema) (tup :: rest)
      else begin
        push current tup;
        go acc current rest
      end
  in
  go [] (create ~capacity schema) tuples

(* Present the batch under [target]'s column order, permuting the column
   pointers by name — the row data is shared, not copied.  Identity when
   the orders already agree. *)
let remap ~target t =
  if Schema.columns t.schema = Schema.columns target then t
  else begin
    let perm =
      Array.map (fun c -> Schema.position_exn t.schema c) (Schema.columns target)
    in
    { t with schema = target; cols = Array.map (fun p -> t.cols.(p)) perm }
  end

(* Copy the selected rows into a fresh dense batch.  Compaction preserves
   the multiset of logical rows (qcheck-checked). *)
let compact t =
  let out = create ~capacity:t.capacity t.schema in
  iter
    (fun r ->
      Array.iteri
        (fun c col -> A1.unsafe_set out.cols.(c) out.len (A1.unsafe_get col r))
        t.cols;
      out.len <- out.len + 1)
    t;
  out

(* Split the selected rows at position [at] into two dense batches. *)
let split t ~at =
  let n = length t in
  if at < 0 || at > n then invalid_arg "Batch.split: position out of range";
  let copy lo hi =
    let out = create ~capacity:t.capacity t.schema in
    for i = lo to hi - 1 do
      let r = row t i in
      Array.iteri
        (fun c col -> A1.unsafe_set out.cols.(c) out.len (A1.unsafe_get col r))
        t.cols;
      out.len <- out.len + 1
    done;
    out
  in
  (copy 0 at, copy at n)

(* Concatenate the selected rows of many batches into dense batches of at
   most [capacity] rows each. *)
let concat ?(capacity = default_capacity) schema batches =
  let current = ref (create ~capacity schema) in
  let acc = ref [] in
  List.iter
    (fun b ->
      iter
        (fun r ->
          if is_full !current then begin
            acc := !current :: !acc;
            current := create ~capacity schema
          end;
          let dst = !current in
          Array.iteri
            (fun c col -> A1.unsafe_set dst.cols.(c) dst.len (A1.unsafe_get col r))
            b.cols;
          dst.len <- dst.len + 1)
        b)
    batches;
  List.rev (if is_empty !current then !acc else !current :: !acc)

(* Drop consecutive duplicate rows (all columns equal) among the selected
   rows — the batched dedup kernel, meaningful on sorted streams. *)
let dedup_sorted_consecutive t =
  let n = length t in
  if n <= 1 then ()
  else begin
    let equal_rows a b =
      let rec go c =
        c >= width t
        || (A1.unsafe_get t.cols.(c) a = A1.unsafe_get t.cols.(c) b && go (c + 1))
      in
      go 0
    in
    let out = Array.make n 0 in
    let k = ref 0 in
    let prev = ref (-1) in
    for i = 0 to n - 1 do
      let r = row t i in
      if !prev < 0 || not (equal_rows !prev r) then begin
        out.(!k) <- r;
        incr k
      end;
      prev := r
    done;
    t.sel <- Some (Array.sub out 0 !k)
  end

let pp ppf t =
  Format.fprintf ppf "batch[%d/%d%s]" (length t) t.capacity
    (if is_dense t then "" else " sel")
