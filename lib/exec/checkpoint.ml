(* Checkpointed intermediates at blocking boundaries.

   The spilling cores (Exec_common) fully materialize an input at two
   natural barriers — a hash join's completed build side and a sort's
   sorted output.  A checkpoint registry captures those materializations
   into governor-accounted, durable-until-release state, stamped with the
   validity band the subplan was costed under.  The stamp is what turns a
   busted cardinality estimate from a silent cost-correctness failure
   into a typed, recoverable fault ([Estimate_busted]), and the captured
   tuples are what let recovery — a bounded retry after a transient
   fault, or an incremental re-optimization — resume from the blocking
   point instead of restarting the whole query.

   Entries are keyed by a *logical fingerprint* (relation set plus the
   set of selection predicates applied in the subtree), not by plan-node
   pid: a replanned query's nodes carry fresh pids, but a node computing
   the same logical result finds the checkpoint by content.  Column
   order may differ between the checkpointed subplan and the node being
   spliced over (a different join order concatenates schemas
   differently), so serving remaps tuples into the target schema. *)

module Interval = Dqep_util.Interval
module Schema = Dqep_algebra.Schema
module Physical = Dqep_algebra.Physical
module Predicate = Dqep_algebra.Predicate
module Props = Dqep_algebra.Props
module Col = Dqep_algebra.Col
module Plan = Dqep_plans.Plan
module Startup = Dqep_plans.Startup
module Database = Dqep_storage.Database
module Trace = Dqep_obs.Trace
module Counter = Dqep_obs.Counter

exception
  Estimate_busted of {
    pid : int;
    observed : int;
    lo : float;
    hi : float;
  }

let () =
  Printexc.register_printer (function
    | Estimate_busted { pid; observed; lo; hi } ->
      Some
        (Printf.sprintf
           "Checkpoint.Estimate_busted(pid %d: observed %d outside [%.1f, %.1f])"
           pid observed lo hi)
    | _ -> None)

(* The env intervals and cardinality band the subplan was costed under:
   [prior] is the compile-time rows interval (the optimizer's contract),
   [estimated_rows] the point estimate of the resolution environment, and
   [band] the acceptance range — the point estimate widened by the
   configured tolerance factor.  An observation outside [band] means the
   plan was chosen on assumptions reality does not honor. *)
type stamp = {
  estimated_rows : float;
  band : Interval.t;
  prior : Interval.t;
}

type entry = {
  fingerprint : string;
  rels : string list;
  schema : Schema.t;  (* column order of the stored tuples *)
  order : Col.t list option;  (* sort order the tuples were produced in *)
  tuples : Iterator.tuple list;
  observed_rows : int;
  bytes : int;  (* charged against the governor until [release] *)
  stamp : stamp;
}

type t = {
  enabled : bool;
  gov : Governor.t;
  obs : Trace.t;
  tolerance : float;
  mutable entries : (string * entry) list;
  mutable busted : string list;  (* fingerprints already reported *)
}

let disabled =
  { enabled = false;
    gov = Governor.none;
    obs = Trace.null;
    tolerance = infinity;
    entries = [];
    busted = [] }

let default_tolerance = 4.0

let create ?(tolerance = default_tolerance) ?(gov = Governor.none)
    ?(obs = Trace.null) () =
  if tolerance <= 1. then invalid_arg "Checkpoint.create: tolerance <= 1";
  { enabled = true; gov; obs; tolerance; entries = []; busted = [] }

let enabled t = t.enabled
let entry_count t = List.length t.entries
let charged_bytes t = List.fold_left (fun a (_, e) -> a + e.bytes) 0 t.entries

(* Logical fingerprint of a (possibly still choose-bearing) subplan: the
   relation set plus the deduplicated set of selection predicates applied
   anywhere in the subtree.  Alternatives of one logical group render the
   same selections through different operators (Filter, Filter_btree_scan,
   an index join's inner filter), so the dedup makes the fingerprint
   alternative-invariant. *)
let fingerprint (plan : Plan.t) =
  let sels = ref [] in
  let add p = sels := Format.asprintf "%a" Predicate.pp_select p :: !sels in
  Plan.iter
    (fun node ->
      match node.Plan.op with
      | Physical.Filter p | Physical.Filter_btree_scan { pred = p; _ } -> add p
      | Physical.Index_join { inner_filter = Some p; _ } -> add p
      | Physical.Index_join { inner_filter = None; _ }
      | Physical.File_scan _ | Physical.Btree_scan _ | Physical.Hash_join _
      | Physical.Merge_join _ | Physical.Sort _ | Physical.Choose_plan ->
        ())
    plan;
  Plan.rels_key plan
  ^ "?"
  ^ String.concat "&" (List.sort_uniq String.compare !sels)

let order_of (plan : Plan.t) =
  match plan.Plan.props.Props.order with
  | Props.Unordered -> None
  | Props.Ordered cols -> Some cols

let stamp_of env (plan : Plan.t) ~tolerance =
  let est = Startup.estimated_rows env plan in
  (* The +1 slack keeps near-zero cardinalities from producing an empty
     acceptance band on either side: estimating 0 rows and observing
     [tolerance] of them is noise, and so is observing 0 rows of a
     small positive estimate. *)
  let band =
    Interval.make
      (Float.max 0. (((est +. 1.) /. tolerance) -. 1.))
      ((est +. 1.) *. tolerance)
  in
  { estimated_rows = est; band; prior = plan.Plan.rows }

(* Materialize a checkpoint for [plan]'s tuples, charging the governor
   for the bytes held.  Idempotent per fingerprint: a resumed or
   replanned execution reaching the same blocking point revalidates
   nothing and charges nothing.  Raises [Estimate_busted] (once per
   fingerprint) when the observation escapes the validity band; the
   entry is stored *before* raising so recovery can splice over it.  A
   checkpoint that does not fit the memory budget is skipped, never a
   reason to fail the query. *)
let take t db env (plan : Plan.t) ~schema tuples =
  ignore db;
  if t.enabled then begin
    let fp = fingerprint plan in
    if not (List.mem_assoc fp t.entries || List.mem fp t.busted) then begin
      let observed = List.length tuples in
      let stamp = stamp_of env plan ~tolerance:t.tolerance in
      let bytes = observed * Int.max 1 plan.Plan.bytes_per_row in
      (match Governor.charge t.gov bytes with
      | () ->
        t.entries <-
          ( fp,
            { fingerprint = fp;
              rels = plan.Plan.rels;
              schema;
              order = order_of plan;
              tuples;
              observed_rows = observed;
              bytes;
              stamp } )
          :: t.entries;
        Trace.incr t.obs Counter.Checkpoints_taken;
        Trace.add t.obs Counter.Checkpoint_bytes bytes
      | exception Governor.Memory_exceeded _ -> ());
      if not (Interval.contains stamp.band (float_of_int observed)) then begin
        t.busted <- fp :: t.busted;
        raise
          (Estimate_busted
             { pid = plan.Plan.pid;
               observed;
               lo = stamp.band.Interval.lo;
               hi = stamp.band.Interval.hi })
      end
    end
  end

(* Column remap from the stored schema into [target]; [None] when the
   column sets differ (not the same logical row layout after all). *)
let remap_of ~src ~target =
  let src_cols = Schema.columns src and dst_cols = Schema.columns target in
  if src_cols = dst_cols then Some None
  else if Array.length src_cols <> Array.length dst_cols then None
  else
    let positions =
      Array.map (fun c -> Schema.position src c) dst_cols
    in
    if Array.for_all Option.is_some positions then
      Some (Some (Array.map Option.get positions))
    else None

let remap_tuples remap tuples =
  match remap with
  | None -> tuples
  | Some perm ->
    List.map (fun t -> Array.map (fun p -> t.(p)) perm) tuples

let order_compatible entry (node : Plan.t) =
  match node.Plan.props.Props.order with
  | Props.Unordered -> true
  | Props.Ordered cols -> (
    (* An ordered splice must promise exactly the order the tuples were
       produced in; remapping permutes columns, not rows, so the promise
       survives the remap. *)
    match entry.order with
    | None -> false
    | Some ecols ->
      (* Positional prefix: tuples sorted by [a; b] are sorted by [a],
         so the required order must be a prefix of the stored one. *)
      let rec prefix req stored =
        match (req, stored) with
        | [], _ -> true
        | r :: req', s :: stored' -> Col.equal r s && prefix req' stored'
        | _ :: _, [] -> false
      in
      prefix cols ecols)

(* Every node of [plan] a checkpoint can stand in for: matching
   fingerprint, honored order promise, columns remappable into the
   node's schema.  [overrides_for] and [resume_for] answer from this one
   predicate because they form a contract: [Startup.resolve] keeps an
   overridden node's subtree verbatim — unresolved choose nodes and all
   — on the promise that the executor splices the materialized tuples in
   by pid.  An override without a matching splice would hand those
   choose nodes to context-free compile-time decisions. *)
let servable t catalog (plan : Plan.t) =
  if not t.enabled then []
  else
    Plan.fold
      (fun acc node ->
        match List.assoc_opt (fingerprint node) t.entries with
        | Some entry when order_compatible entry node -> (
          match
            remap_of ~src:entry.schema ~target:(Plan.schema catalog node)
          with
          | Some remap -> (node, entry, remap) :: acc
          | None -> acc)
        | Some _ | None -> acc)
      [] plan

(* Every node of [plan] a checkpoint can serve, with tuples remapped into
   the node's schema.  Counts one [Resume_hits] per distinct entry that
   found at least one node. *)
let resume_for t db (plan : Plan.t) =
  if not t.enabled then []
  else begin
    let served = Hashtbl.create 8 in
    let out =
      List.map
        (fun ((node : Plan.t), entry, remap) ->
          Hashtbl.replace served entry.fingerprint ();
          (node.Plan.pid, remap_tuples remap entry.tuples))
        (servable t (Database.catalog db) plan)
    in
    Trace.add t.obs Counter.Resume_hits (Hashtbl.length served);
    out
  end

(* Observed cardinalities for [plan]'s nodes, as Startup overrides: the
   decision procedure re-decides against reality.  Only nodes the
   checkpoint will actually serve — see [servable]. *)
let overrides_for t db (plan : Plan.t) =
  List.map
    (fun ((node : Plan.t), entry, _) ->
      (node.Plan.pid, float_of_int entry.observed_rows))
    (servable t (Database.catalog db) plan)

(* Observations keyed by relation set — the currency of the observation
   cache and of incremental re-optimization (memo groups file their row
   intervals under the same key). *)
let rels_observations t =
  List.map
    (fun (_, e) ->
      (String.concat "|" e.rels, float_of_int e.observed_rows))
    t.entries

(* Roll every checkpoint's bytes back out of the governor and drop the
   intermediates.  Always called when the supervised run ends (either
   arm), so checkpoint bytes can never leak through a shared pool. *)
let release t =
  if t.enabled then begin
    List.iter (fun (_, e) -> Governor.release t.gov e.bytes) t.entries;
    t.entries <- []
  end
