(** The execution engine: compiles physical plans to iterators over a
    materialized {!Dqep_storage.Database}.

    All data access flows through the database's buffer pool, so physical
    I/O is accounted: hash joins whose build input exceeds memory
    partition to temporary files (Grace hash join), sorts spill to
    disk-based runs, and index scans fetch records through B-trees.

    Choose-plan operators are resolved at open time via
    {!Dqep_plans.Startup} — the run-time half of the paper's 1989
    contribution. *)

type run_stats = {
  tuples : int;
  io : Dqep_storage.Buffer_pool.stats;  (** physical I/O delta of the run *)
  cpu_seconds : float;
  resolved_plan : Dqep_plans.Plan.t;  (** after choose-plan decisions *)
}

val compile :
  Dqep_storage.Database.t -> Dqep_cost.Env.t -> Dqep_plans.Plan.t -> Iterator.t
(** Compile a plan under a point environment (from actual bindings).
    Dynamic plans are resolved first.
    @raise Invalid_argument on malformed plans. *)

val compile_with :
  Dqep_storage.Database.t ->
  Dqep_cost.Env.t ->
  ?materialized:(int * Iterator.tuple list) list ->
  Dqep_plans.Plan.t ->
  Iterator.t
(** Like {!compile}, but nodes whose pid appears in [materialized] are
    served from the given temporary results instead of being executed —
    the execution half of mid-query adaptation ({!Midquery}). *)

val run :
  Dqep_storage.Database.t ->
  Dqep_cost.Bindings.t ->
  Dqep_plans.Plan.t ->
  Iterator.tuple list * run_stats
(** Resolve, execute and drain a plan, reporting I/O and CPU. *)

val memory_pages : Dqep_cost.Env.t -> int
(** The engine's working-memory budget under the environment. *)
