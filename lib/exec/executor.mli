(** The execution engine: compiles physical plans to iterators over a
    materialized {!Dqep_storage.Database}.

    All data access flows through the database's buffer pool, so physical
    I/O is accounted: hash joins whose build input exceeds memory
    partition to temporary files (Grace hash join), sorts spill to
    disk-based runs, and index scans fetch records through B-trees.

    Choose-plan operators are resolved at open time via
    {!Dqep_plans.Startup} — the run-time half of the paper's 1989
    contribution. *)

type run_stats = {
  tuples : int;
  io : Dqep_storage.Buffer_pool.stats;  (** physical I/O delta of the run *)
  cpu_seconds : float;
  resolved_plan : Dqep_plans.Plan.t;  (** after choose-plan decisions *)
  choose_nodes : int;
      (** choose-plan operators the submitted plan carried (0 for a
          static plan) — with [Optimizer.stats.alternatives_pruned],
          how risk postures compare from the shell *)
  retries : int;  (** attempts repeated after a transient fault *)
  faults_absorbed : int;  (** injected faults survived without failing the run *)
  budget_aborts : int;  (** attempts aborted by the I/O budget guard *)
  failovers : int;  (** re-resolutions onto another choose-plan alternative *)
  replans : int;  (** incremental re-optimizations after a busted estimate *)
  exec : Exec_common.exec_profile;
      (** which engine ran and, for the batch engine, its batch and
          exchange accounting *)
}
(** The resilience counters are zero for a plain {!run}; they are filled
    in by {!Resilience.run}. *)

exception Infeasible of Dqep_plans.Validate.problem list
(** The plan references catalog objects that no longer exist and pruning
    infeasible choose-plan alternatives left nothing runnable — a full
    re-optimization is needed (paper, Section 2). *)

exception Invalid_plan of Dqep_util.Diagnostic.t list
(** The static verifier found corruption beyond catalog drift — a broken
    DAG, ill-formed cost intervals, non-equivalent choose alternatives.
    Unlike {!Infeasible}, nothing can be pruned around this. *)

val check_feasible :
  Dqep_storage.Database.t ->
  Dqep_cost.Env.t ->
  Dqep_plans.Plan.t ->
  Dqep_plans.Plan.t
(** Activation-time validation, the executor's pre-activation hook into
    the static analysis pass ({!Dqep_analysis.Verify}): the full verifier
    runs first and rejects corrupt plans; catalog-drift findings then
    take the classic path ({!Dqep_plans.Validate}) — the plan is returned
    unchanged when it checks out, pruned when only some choose-plan
    alternatives are infeasible.
    @raise Invalid_plan on error-severity diagnostics outside the
    feasibility subset.
    @raise Infeasible when nothing feasible remains. *)

val compile :
  Dqep_storage.Database.t -> Dqep_cost.Env.t -> Dqep_plans.Plan.t -> Iterator.t
(** Compile a plan under a point environment (from actual bindings).
    Dynamic plans are resolved first.
    @raise Invalid_argument on malformed plans. *)

val compile_with :
  Dqep_storage.Database.t ->
  Dqep_cost.Env.t ->
  ?gov:Governor.t ->
  ?obs:Dqep_obs.Trace.t ->
  ?materialized:(int * Iterator.tuple list) list ->
  ?checkpoint:Checkpoint.t ->
  Dqep_plans.Plan.t ->
  Iterator.t
(** Like {!compile}, but nodes whose pid appears in [materialized] are
    served from the given temporary results instead of being executed —
    the execution half of mid-query adaptation ({!Midquery}).  When a
    [gov] is given, every iterator's [next] is a cancellation point and
    the spilling operators charge their working sets against its memory
    budget ({!Governor}); default {!Governor.none} governs nothing.
    [obs] (default {!Dqep_obs.Trace.null}) records spill counters and —
    when the trace has taps enabled — per-operator cardinalities.
    [checkpoint] (default {!Checkpoint.disabled}) captures fully
    materialized intermediates at blocking points — a hash join's
    completed build side, a sort's output — and may raise
    {!Checkpoint.Estimate_busted} when an observation escapes the plan's
    validity band. *)

val execute :
  Dqep_storage.Database.t ->
  Dqep_cost.Env.t ->
  ?gov:Governor.t ->
  ?obs:Dqep_obs.Trace.t ->
  ?materialized:(int * Iterator.tuple list) list ->
  ?checkpoint:Checkpoint.t ->
  ?engine:Exec_common.engine ->
  ?workers:int ->
  ?on_batch:(int -> unit) ->
  Dqep_plans.Plan.t ->
  Iterator.tuple list * Exec_common.exec_profile
(** Drain the plan through the selected engine.  [engine] defaults to
    [DQEP_ENGINE] (row when unset), [workers] to [DQEP_WORKERS]; workers
    only matter to the batch engine's exchange scans.  [on_batch]
    observes the selected row count of every batch delivered at the plan
    root as it is produced (the row engine reports one "batch" holding
    the whole result) — {!Midquery} accumulates observed cardinalities
    through it.  [gov] and [obs] as in {!compile_with}; the plan root
    additionally counts delivered rows against the governor's row limit
    and records [Rows_out]/[Batches_out] on the trace. *)

val run :
  Dqep_storage.Database.t ->
  ?gov:Governor.t ->
  ?obs:Dqep_obs.Trace.t ->
  ?engine:Exec_common.engine ->
  ?workers:int ->
  ?risk:Dqep_cost.Risk.t ->
  Dqep_cost.Bindings.t ->
  Dqep_plans.Plan.t ->
  Iterator.tuple list * run_stats
(** Resolve, execute and drain a plan, reporting I/O and CPU.
    [gov]/[engine]/[workers] as in {!execute}.  [risk] scalarizes any
    residual cost uncertainty during start-up resolution
    ({!Dqep_plans.Startup.resolve}); default [Expected], which is the
    historical behaviour.  The run records through [obs] when one is
    supplied (the buffer pool is teed into it for the duration, a "run"
    span brackets execution) and {!run_stats} is computed as a view over
    the trace's counter deltas. *)

val memory_pages : Dqep_cost.Env.t -> int
(** The engine's working-memory budget under the environment. *)
