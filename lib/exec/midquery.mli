(** Mid-query adaptation: delaying choose-plan decisions beyond
    start-up-time into run-time (paper, Section 7).

    When actual data distributions violate the optimizer's uniformity
    assumption, selectivity estimates — and therefore start-up-time
    decisions — can be wrong even with all host variables bound.  The
    paper's proposed remedy is to evaluate a subplan shared by all
    alternatives of a choose-plan operator into a temporary result first;
    its {e observed} cardinality then replaces the estimate in the
    decision procedure.

    The strategy here: if the plan's root is a choose-plan operator, find
    the largest choose-free subplan common to every alternative,
    materialize it, re-run the decision procedure with the observed
    cardinality (see {!Dqep_plans.Startup.evaluate}'s [overrides]), and
    execute the winner with the temporary spliced in. *)

type stats = {
  materialized : Dqep_plans.Plan.t option;
      (** the shared subplan evaluated first, if any *)
  estimated_rows : float;  (** the cost model's estimate for it *)
  observed_rows : int;  (** its actual cardinality *)
  default_cost : float;  (** anticipated cost of the start-up-time choice *)
  adapted_cost : float;  (** anticipated cost of the adapted choice *)
  switched : bool;
      (** whether observation changed the chosen plan *)
  run : Executor.run_stats;
}

val shared_subplan : Dqep_plans.Plan.t -> Dqep_plans.Plan.t option
(** The largest choose-free subplan common to all alternatives of the
    root choose-plan operator; [None] if the root is not a choose-plan
    or nothing is shared. *)

type observation = {
  observed_rows : int;  (** actual cardinality of the shared subplan *)
  batches : int;
      (** batches the cardinality accumulated over — 1 under the row
          engine, the root's batch count under the batch engine *)
  overrides : (int * float) list;
      (** pid -> observed cardinality, for {!Dqep_plans.Startup.resolve} *)
  materialized : (int * Iterator.tuple list) list;
      (** pid -> temporary result, for {!Executor.compile_with} *)
}

val observe :
  Dqep_storage.Database.t ->
  Dqep_cost.Env.t ->
  ?gov:Governor.t ->
  ?obs:Dqep_obs.Trace.t ->
  ?engine:Exec_common.engine ->
  ?workers:int ->
  Dqep_plans.Plan.t ->
  sub:Dqep_plans.Plan.t ->
  observation
(** Materialize [sub] (a subplan of the plan, typically from
    {!shared_subplan}) and translate its observed cardinality into
    decision-procedure overrides and execution-time splices for every
    equivalent node of the plan.  The subplan runs under a taps-enabled
    trace ([obs] when it has taps, a private one otherwise), and the
    observed cardinality is read off the root operator's tap — the same
    observation channel feedback re-optimization consumes; the root
    delivery count is the fallback for materialized roots.  Also used by
    {!Resilience} to carry observed cardinalities into failover
    re-resolution. *)

val run :
  Dqep_storage.Database.t ->
  ?gov:Governor.t ->
  ?obs:Dqep_obs.Trace.t ->
  ?engine:Exec_common.engine ->
  ?workers:int ->
  Dqep_cost.Bindings.t ->
  Dqep_plans.Plan.t ->
  Iterator.tuple list * stats
(** Execute with mid-query adaptation; falls back to plain start-up
    resolution when there is nothing to observe.  [gov]/[engine]/[workers]
    as in {!Executor.execute}: the observation phase and the final
    execution run under the same governor, so deadlines and memory
    budgets span the whole adapted query. *)
