(** Per-query resource governance: a cooperative cancellation token with
    a deadline, a memory budget, and a row limit.

    One governor accompanies one query through both execution engines —
    row iterators {!check} on every [next], batch operators per batch,
    exchange workers per partition page — and the spilling join/sort
    cores ({!Exec_common}) account their materializations against the
    memory budget with {!charge}.  The token is shared across domains
    (all state is atomic), so cancelling from any thread stops a
    parallel exchange as well as the consuming iterator.

    The graceful-degradation ladder: a shrinking memory {!headroom}
    first makes the cores spill {e earlier} (they size their in-memory
    working sets by it); only an allocation that cannot fit even after
    maximal partitioning raises {!Memory_exceeded}.  {!Resilience} then
    excludes the failed alternative and re-resolves the dynamic plan
    under a lowered memory environment, preferring a lower-memory
    alternative. *)

exception Deadline_exceeded of { elapsed : float; budget : float }
(** The wall-clock budget ran out at a check point (seconds). *)

exception Memory_exceeded of { budget : int; in_use : int; requested : int }
(** A charge would push accounted memory past the budget (bytes); the
    failed charge is rolled back. *)

exception Cancelled of string
(** The token was cancelled (the reason names the source: an explicit
    {!cancel}, a row limit, or an injected test cancellation). *)

type pool = { capacity : int; in_use : int Atomic.t }
(** A global memory pool shared by concurrently admitted queries
    ({!Session}): every charge counts against the governor's own budget
    {e and} the pool. *)

val pool : capacity_bytes:int -> pool
val pool_in_use : pool -> int

type t

val create :
  ?clock:(unit -> float) ->
  ?deadline:float ->
  ?memory_bytes:int ->
  ?pool:pool ->
  ?max_rows:int ->
  ?cancel_after_checks:int ->
  ?check_every:int ->
  unit ->
  t
(** [deadline] is seconds of budget measured on [clock] (default
    wall-clock) from creation.  [cancel_after_checks] deterministically
    cancels the token at the given check tick — the chaos harness and the
    qcheck cancellation property use it to cancel at reproducible points.
    [check_every] bounds how many checks may pass between deadline clock
    reads (default 32): the cancellation-latency bound reported by
    [bench govern] is stated in these ticks. *)

val none : t
(** The unlimited governor: {!check} is a single branch, {!charge} a
    no-op.  Every execution entry point defaults to it, so ungoverned
    callers pay (almost) nothing. *)

val is_unlimited : t -> bool

val with_pool : t -> pool -> t
(** A copy of the governor that also charges against [pool].  The copy
    shares the original's cancellation token and charge counters, so a
    caller-held handle still cancels the admitted run. *)

val cancel : t -> reason:string -> unit
(** Request cooperative cancellation; the next {!check} on any domain
    raises {!Cancelled}.  Idempotent — the first reason wins.
    @raise Invalid_argument on {!none}. *)

val is_cancelled : t -> bool
val cancelled_reason : t -> string option

val check : t -> unit
(** The cooperative cancellation point.
    @raise Cancelled once {!cancel} was requested (or the injected tick
    is reached),
    @raise Deadline_exceeded once the deadline has passed (checked every
    [check_every] ticks; the violation also cancels the token so sibling
    domains stop without re-reading the clock). *)

val checks : t -> int
(** Check ticks consumed so far (for the benchmark's latency bound). *)

val check_every : t -> int

val elapsed : t -> float

val charge : t -> int -> unit
(** Account [bytes] of working memory.
    @raise Memory_exceeded if the charge would exceed the budget or the
    shared pool; the failed charge is fully rolled back. *)

val release : t -> int -> unit

val with_charge : t -> int -> (unit -> 'a) -> 'a
(** Charge, run, release (also on exception). *)

val headroom : t -> int option
(** Bytes still chargeable before a violation; [None] when memory is
    unaccounted.  The spilling cores take [min (env memory) headroom] as
    their working-set bound — the graceful-degradation half of the
    budget: under pressure they spill earlier instead of aborting. *)

val charged_bytes : t -> int
val memory_budget : t -> int option

val count_rows : t -> int -> unit
(** Account rows delivered at the plan root.
    @raise Cancelled when the row limit is exceeded. *)

val rows_produced : t -> int

val derived_limits : Dqep_cost.Env.t -> cost:Dqep_util.Interval.t -> float option * int
(** Budgets derived from the environment and a plan's anticipated cost
    interval: [(deadline, memory_bytes)].  Memory is the environment's
    upper memory bound in bytes.  The deadline is armed only when
    [DQEP_DEADLINE_FACTOR] is set: factor × the cost interval's upper
    bound (cost-model seconds), floored at 10ms. *)
