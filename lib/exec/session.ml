(* Query sessions: admission control in front of the resilient executor.

   A session bounds what runs concurrently (admission slots), what waits
   (a bounded FIFO ticket queue with deadline shedding), and what the
   admitted queries may collectively hold (a shared Governor.pool every
   admitted query's charges count against).

   Concurrency model: session state is guarded by one mutex + condition;
   submitters on any number of domains take a ticket, wait FIFO for a
   slot, run, release.  Storage is NOT shared — each submitter executes
   against its own Database (the engines are not thread-safe across
   concurrent executions); the session governs only admission and the
   global memory pool, which are domain-safe by construction.

   Waiters are only re-examined on wakeups (OCaml's Condition has no
   timed wait), so queue-deadline shedding is observed when a completion
   or another shed broadcasts.  Governed queries carry their own
   deadlines, so slots turn over and the queue drains; a session used
   without any per-query deadline should set max_queue instead. *)

type shed_reason = Queue_full | Queue_timeout

let shed_reason_name = function
  | Queue_full -> "queue_full"
  | Queue_timeout -> "queue_timeout"

type outcome =
  | Completed of Iterator.tuple list * Executor.run_stats
  | Failed of Resilience.failure
  | Shed of shed_reason

type config = {
  max_inflight : int;
  max_queue : int;
  queue_deadline : float option;
  memory_pool_bytes : int option;
  resilience : Resilience.config;
}

let default_max_inflight () =
  match Option.bind (Sys.getenv_opt "DQEP_MAX_INFLIGHT") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 4

let config ?max_inflight ?(max_queue = 16) ?queue_deadline ?memory_pool_bytes
    ?(resilience = Resilience.default) () =
  let max_inflight =
    match max_inflight with Some n -> n | None -> default_max_inflight ()
  in
  if max_inflight < 1 then invalid_arg "Session.config: max_inflight < 1";
  if max_queue < 0 then invalid_arg "Session.config: max_queue < 0";
  (match queue_deadline with
  | Some d when d < 0. -> invalid_arg "Session.config: queue_deadline < 0"
  | Some _ | None -> ());
  (match memory_pool_bytes with
  | Some b when b <= 0 -> invalid_arg "Session.config: memory_pool_bytes <= 0"
  | Some _ | None -> ());
  { max_inflight; max_queue; queue_deadline; memory_pool_bytes; resilience }

type stats = {
  submitted : int;
  admitted : int;
  completed : int;
  failed : int;
  shed_queue_full : int;
  shed_queue_timeout : int;
  peak_inflight : int;
  peak_queued : int;
}

type t = {
  cfg : config;
  pool : Governor.pool option;
  mu : Mutex.t;
  cond : Condition.t;
  abandoned : (int, unit) Hashtbl.t;
  mutable inflight : int;
  mutable queued : int;
  mutable next_ticket : int;
  mutable serving : int;
  mutable submitted : int;
  mutable admitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable shed_queue_full : int;
  mutable shed_queue_timeout : int;
  mutable peak_inflight : int;
  mutable peak_queued : int;
}

let create ?(config = config ()) () =
  { cfg = config;
    pool =
      Option.map
        (fun capacity_bytes -> Governor.pool ~capacity_bytes)
        config.memory_pool_bytes;
    mu = Mutex.create ();
    cond = Condition.create ();
    abandoned = Hashtbl.create 16;
    inflight = 0;
    queued = 0;
    next_ticket = 0;
    serving = 0;
    submitted = 0;
    admitted = 0;
    completed = 0;
    failed = 0;
    shed_queue_full = 0;
    shed_queue_timeout = 0;
    peak_inflight = 0;
    peak_queued = 0 }

let memory_pool t = t.pool

let stats t =
  Mutex.lock t.mu;
  let s =
    { submitted = t.submitted;
      admitted = t.admitted;
      completed = t.completed;
      failed = t.failed;
      shed_queue_full = t.shed_queue_full;
      shed_queue_timeout = t.shed_queue_timeout;
      peak_inflight = t.peak_inflight;
      peak_queued = t.peak_queued }
  in
  Mutex.unlock t.mu;
  s

let inflight t =
  Mutex.lock t.mu;
  let n = t.inflight in
  Mutex.unlock t.mu;
  n

let queued t =
  Mutex.lock t.mu;
  let n = t.queued in
  Mutex.unlock t.mu;
  n

(* Skip tickets whose holders shed on queue deadline; call with mu held. *)
let advance t =
  while Hashtbl.mem t.abandoned t.serving do
    Hashtbl.remove t.abandoned t.serving;
    t.serving <- t.serving + 1
  done

let admit t ~clock =
  Mutex.lock t.mu;
  t.submitted <- t.submitted + 1;
  if
    t.queued >= t.cfg.max_queue
    && (t.queued > 0 || t.inflight >= t.cfg.max_inflight)
  then begin
    (* The wait queue is full and this submission would have to wait
       (someone is queued ahead, or every slot is taken): shed at the
       door.  With [max_queue = 0] only immediately admissible
       submissions get in. *)
    t.shed_queue_full <- t.shed_queue_full + 1;
    Mutex.unlock t.mu;
    Error Queue_full
  end
  else begin
    let ticket = t.next_ticket in
    t.next_ticket <- ticket + 1;
    t.queued <- t.queued + 1;
    t.peak_queued <- Int.max t.peak_queued t.queued;
    let enqueued_at = clock () in
    let rec wait () =
      advance t;
      if t.serving = ticket && t.inflight < t.cfg.max_inflight then begin
        t.serving <- ticket + 1;
        t.queued <- t.queued - 1;
        t.inflight <- t.inflight + 1;
        t.peak_inflight <- Int.max t.peak_inflight t.inflight;
        t.admitted <- t.admitted + 1;
        (* The ticket behind may be admissible too (several free slots). *)
        Condition.broadcast t.cond;
        Mutex.unlock t.mu;
        Ok ()
      end
      else
        match t.cfg.queue_deadline with
        | Some d when clock () -. enqueued_at >= d ->
          t.queued <- t.queued - 1;
          t.shed_queue_timeout <- t.shed_queue_timeout + 1;
          if t.serving = ticket then t.serving <- ticket + 1
          else Hashtbl.replace t.abandoned ticket ();
          advance t;
          Condition.broadcast t.cond;
          Mutex.unlock t.mu;
          Error Queue_timeout
        | _ ->
          Condition.wait t.cond t.mu;
          wait ()
    in
    wait ()
  end

let release t ~outcome =
  Mutex.lock t.mu;
  t.inflight <- t.inflight - 1;
  (match outcome with
  | `Completed -> t.completed <- t.completed + 1
  | `Failed -> t.failed <- t.failed + 1);
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let submit t ?(gov = Governor.none) ?resilience ?(clock = Unix.gettimeofday)
    db bindings plan =
  match admit t ~clock with
  | Error reason -> Shed reason
  | Ok () ->
    let gov =
      match t.pool with Some p -> Governor.with_pool gov p | None -> gov
    in
    let rconfig = Option.value resilience ~default:t.cfg.resilience in
    let outcome =
      match Resilience.run ~config:rconfig ~gov db bindings plan with
      | Ok (tuples, stats), _ -> Completed (tuples, stats)
      | Error failure, _ -> Failed failure
      | exception e ->
        (* Resilience.run types every expected error; anything else is a
           bug, but the slot must still be released. *)
        release t ~outcome:`Failed;
        raise e
    in
    (match outcome with
    | Completed _ -> release t ~outcome:`Completed
    | Failed _ | Shed _ -> release t ~outcome:`Failed);
    outcome
