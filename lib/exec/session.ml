(* Query sessions: admission control in front of the resilient executor.

   A session bounds what runs concurrently (admission slots), what waits
   (a bounded FIFO ticket queue with deadline shedding), and what the
   admitted queries may collectively hold (a shared Governor.pool every
   admitted query's charges count against).

   Concurrency model: session state is guarded by one mutex + condition;
   submitters on any number of domains take a ticket, wait FIFO for a
   slot, run, release.  Storage is NOT shared — each submitter executes
   against its own Database (the engines are not thread-safe across
   concurrent executions); the session governs only admission and the
   global memory pool, which are domain-safe by construction.

   Waiters are only re-examined on wakeups (OCaml's Condition has no
   timed wait), so queue-deadline shedding is observed when a completion
   or another shed broadcasts.  Governed queries carry their own
   deadlines, so slots turn over and the queue drains; a session used
   without any per-query deadline should set max_queue instead. *)

module Trace = Dqep_obs.Trace
module Counter = Dqep_obs.Counter
module Feedback = Dqep_obs.Feedback
module Env = Dqep_cost.Env
module Bindings = Dqep_cost.Bindings
module Plan = Dqep_plans.Plan
module Database = Dqep_storage.Database
module Analyses = Dqep_analysis.Analyses

type shed_reason = Queue_full | Queue_timeout

let shed_reason_name = function
  | Queue_full -> "queue_full"
  | Queue_timeout -> "queue_timeout"

(* Each shed reason has its own counter, so door sheds and
   queue-deadline sheds stay separately attributable in any tally built
   over the taxonomy. *)
let shed_counter = function
  | Queue_full -> Counter.Shed_queue_full
  | Queue_timeout -> Counter.Shed_queue_timeout

type outcome =
  | Completed of Iterator.tuple list * Executor.run_stats
  | Failed of Resilience.failure
  | Shed of shed_reason

type config = {
  max_inflight : int;
  max_queue : int;
  queue_deadline : float option;
  memory_pool_bytes : int option;
  resilience : Resilience.config;
  precheck : bool;
}

let default_max_inflight () =
  match Option.bind (Sys.getenv_opt "DQEP_MAX_INFLIGHT") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 4

let config ?max_inflight ?(max_queue = 16) ?queue_deadline ?memory_pool_bytes
    ?(resilience = Resilience.default) ?(precheck = true) () =
  let max_inflight =
    match max_inflight with Some n -> n | None -> default_max_inflight ()
  in
  if max_inflight < 1 then invalid_arg "Session.config: max_inflight < 1";
  if max_queue < 0 then invalid_arg "Session.config: max_queue < 0";
  (match queue_deadline with
  | Some d when d < 0. -> invalid_arg "Session.config: queue_deadline < 0"
  | Some _ | None -> ());
  (match memory_pool_bytes with
  | Some b when b <= 0 -> invalid_arg "Session.config: memory_pool_bytes <= 0"
  | Some _ | None -> ());
  { max_inflight; max_queue; queue_deadline; memory_pool_bytes; resilience;
    precheck }

type stats = {
  submitted : int;
  admitted : int;
  completed : int;
  failed : int;
  shed_queue_full : int;
  shed_queue_timeout : int;
  peak_inflight : int;
  peak_queued : int;
}

(* Lifecycle accounting lives on a session-lifetime trace ([stats] is a
   view over its counters), and completed runs deposit what they measured
   — realized parameter bindings, per-operator cardinalities — into the
   session's observation cache, the raw material of {!refined_env}. *)
type t = {
  cfg : config;
  pool : Governor.pool option;
  obs : Trace.t;
  feedback : Feedback.t;
  mu : Mutex.t;
  cond : Condition.t;
  abandoned : (int, unit) Hashtbl.t;
  mutable inflight : int;
  mutable queued : int;
  mutable next_ticket : int;
  mutable serving : int;
  mutable peak_inflight : int;
  mutable peak_queued : int;
}

let create ?(config = config ()) () =
  { cfg = config;
    pool =
      Option.map
        (fun capacity_bytes -> Governor.pool ~capacity_bytes)
        config.memory_pool_bytes;
    obs = Trace.create ();
    feedback = Feedback.create ();
    mu = Mutex.create ();
    cond = Condition.create ();
    abandoned = Hashtbl.create 16;
    inflight = 0;
    queued = 0;
    next_ticket = 0;
    serving = 0;
    peak_inflight = 0;
    peak_queued = 0 }

let memory_pool t = t.pool
let obs t = t.obs
let feedback t = t.feedback

(* Histogram-shaped refinement: the hull of every feedback histogram is
   the band [selectivity_bounds] used to report, so interval consumers
   of the refined env see exactly the pre-histogram narrowing, while
   ranked-risk optimization additionally learns where inside each band
   the realized selectivities concentrate. *)
let refined_env t env =
  Env.refine_dists env ~selectivities:(Feedback.selectivity_dists t.feedback)

let stats t =
  Mutex.lock t.mu;
  let c = Trace.get t.obs in
  let s =
    { submitted = c Counter.Submitted;
      admitted = c Counter.Admitted;
      completed = c Counter.Completed;
      failed = c Counter.Failed;
      shed_queue_full = c Counter.Shed_queue_full;
      shed_queue_timeout = c Counter.Shed_queue_timeout;
      peak_inflight = t.peak_inflight;
      peak_queued = t.peak_queued }
  in
  Mutex.unlock t.mu;
  s

let inflight t =
  Mutex.lock t.mu;
  let n = t.inflight in
  Mutex.unlock t.mu;
  n

let queued t =
  Mutex.lock t.mu;
  let n = t.queued in
  Mutex.unlock t.mu;
  n

(* Skip tickets whose holders shed on queue deadline; call with mu held. *)
let advance t =
  while Hashtbl.mem t.abandoned t.serving do
    Hashtbl.remove t.abandoned t.serving;
    t.serving <- t.serving + 1
  done

let admit t ~clock =
  Mutex.lock t.mu;
  Trace.incr t.obs Counter.Submitted;
  if
    t.queued >= t.cfg.max_queue
    && (t.queued > 0 || t.inflight >= t.cfg.max_inflight)
  then begin
    (* The wait queue is full and this submission would have to wait
       (someone is queued ahead, or every slot is taken): shed at the
       door.  With [max_queue = 0] only immediately admissible
       submissions get in. *)
    Trace.incr t.obs (shed_counter Queue_full);
    Mutex.unlock t.mu;
    Error Queue_full
  end
  else begin
    let ticket = t.next_ticket in
    t.next_ticket <- ticket + 1;
    t.queued <- t.queued + 1;
    if t.queued > t.peak_queued then begin
      t.peak_queued <- t.queued;
      Trace.gauge t.obs "peak_queued" (float_of_int t.queued)
    end;
    let enqueued_at = clock () in
    let rec wait () =
      advance t;
      if t.serving = ticket && t.inflight < t.cfg.max_inflight then begin
        t.serving <- ticket + 1;
        t.queued <- t.queued - 1;
        t.inflight <- t.inflight + 1;
        if t.inflight > t.peak_inflight then begin
          t.peak_inflight <- t.inflight;
          Trace.gauge t.obs "peak_inflight" (float_of_int t.inflight)
        end;
        Trace.incr t.obs Counter.Admitted;
        (* The ticket behind may be admissible too (several free slots). *)
        Condition.broadcast t.cond;
        Mutex.unlock t.mu;
        Ok ()
      end
      else
        match t.cfg.queue_deadline with
        | Some d when clock () -. enqueued_at >= d ->
          t.queued <- t.queued - 1;
          Trace.incr t.obs (shed_counter Queue_timeout);
          if t.serving = ticket then t.serving <- ticket + 1
          else Hashtbl.replace t.abandoned ticket ();
          advance t;
          Condition.broadcast t.cond;
          Mutex.unlock t.mu;
          Error Queue_timeout
        | _ ->
          Condition.wait t.cond t.mu;
          wait ()
    in
    wait ()
  end

let release t ~outcome =
  Mutex.lock t.mu;
  t.inflight <- t.inflight - 1;
  (match outcome with
  | `Completed -> Trace.incr t.obs Counter.Completed
  | `Failed -> Trace.incr t.obs Counter.Failed);
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

(* Deposit what a completed run measured into the observation cache: the
   realized parameter bindings (a bound selectivity is an exact
   observation of its variable) and every tapped operator's cardinality,
   keyed by relation set so a later query's node over the same relations
   finds it. *)
let record_feedback t rt (bindings : Bindings.t) resolved_plan =
  List.iter
    (fun (var, v) -> Feedback.observe_selectivity t.feedback var v)
    bindings.Bindings.selectivities;
  let nodes = Hashtbl.create 32 in
  Plan.iter (fun node -> Hashtbl.replace nodes node.Plan.pid node) resolved_plan;
  List.iter
    (fun (pid, _op, rows, _batches) ->
      match Hashtbl.find_opt nodes pid with
      | Some node -> Feedback.observe_rows t.feedback ~key:(Plan.rels_key node) rows
      | None -> ())
    (Trace.taps rt)

(* Fold a finished run's counter deltas into the session-lifetime trace. *)
let fold_counters t rt ~base =
  List.iter
    (fun c ->
      let d = Trace.get rt c - base c in
      if d <> 0 then Trace.add t.obs c d)
    Counter.all

let submit t ?(gov = Governor.none) ?obs ?resilience
    ?(clock = Unix.gettimeofday) db bindings plan =
  match admit t ~clock with
  | Error reason -> Shed reason
  | Ok () ->
    let gov =
      match t.pool with Some p -> Governor.with_pool gov p | None -> gov
    in
    let rconfig = Option.value resilience ~default:t.cfg.resilience in
    (* Static admission precheck: a plan whose guaranteed working set
       cannot fit the memory budget would burn its slot only to abort
       with Memory_exceeded; reject it at the door with a diagnostic
       instead.  The budget is the tighter of the query's own grant and
       the shared pool's capacity (a charge must fit both). *)
    let static_rejection =
      if not t.cfg.precheck then None
      else begin
        let budget =
          match (Governor.memory_budget gov, t.pool) with
          | Some b, Some p -> Some (Int.min b p.Governor.capacity)
          | Some b, None -> Some b
          | None, Some p -> Some p.Governor.capacity
          | None, None -> None
        in
        match budget with
        | None -> None
        | Some budget_bytes ->
          let env = Env.of_bindings (Database.catalog db) bindings in
          let floor = Dqep_analysis.Absint.guaranteed_bytes env ~budget_bytes plan in
          if floor > budget_bytes then
            Some
              (Analyses.budget_check env ~budget_bytes plan)
          else None
      end
    in
    (* Every admitted query runs under a taps-enabled trace (the caller's
       when one was supplied), so its operator cardinalities can feed the
       observation cache; its counters are folded into the session trace
       when it finishes. *)
    let rt =
      match obs with
      | Some tr when Trace.enabled tr -> tr
      | Some _ | None -> Trace.create ~taps:true ()
    in
    let base =
      let snap = List.map (fun c -> (c, Trace.get rt c)) Counter.all in
      fun c -> List.assoc c snap
    in
    let outcome =
      match static_rejection with
      | Some diags ->
        Trace.incr t.obs Counter.Rejected_precheck;
        Failed (Resilience.Rejected diags)
      | None ->
      match Resilience.run ~config:rconfig ~gov ~obs:rt db bindings plan with
      | Ok (tuples, stats), _ -> Completed (tuples, stats)
      | Error failure, _ -> Failed failure
      | exception e ->
        (* Resilience.run types every expected error; anything else is a
           bug, but the slot must still be released. *)
        fold_counters t rt ~base;
        release t ~outcome:`Failed;
        raise e
    in
    fold_counters t rt ~base;
    (match outcome with
    | Completed (_, stats) ->
      record_feedback t rt bindings stats.Executor.resolved_plan;
      release t ~outcome:`Completed
    | Failed _ | Shed _ -> release t ~outcome:`Failed);
    outcome
