(** Turning predicates into executable tests over tuples.

    A selection predicate [attr <= :hv] with selectivity [s] over a
    uniform domain of size [d] is realized as [value < round (s * d)], so
    the realized fraction of matching records approximates [s]. *)

val threshold : Dqep_cost.Env.t -> Dqep_algebra.Predicate.select -> int
(** Exclusive upper bound on matching attribute values under the (point)
    environment. *)

val select_matches :
  Dqep_cost.Env.t ->
  Dqep_algebra.Schema.t ->
  Dqep_algebra.Predicate.select ->
  Iterator.tuple ->
  bool

val equi_matches :
  left:Dqep_algebra.Schema.t ->
  right:Dqep_algebra.Schema.t ->
  Dqep_algebra.Predicate.equi list ->
  Iterator.tuple ->
  Iterator.tuple ->
  bool
(** Whether two tuples (from the left/right schemas) satisfy all join
    predicates; predicates are located on either side automatically. *)
