(** Query sessions: admission control in front of the resilient
    executor.

    A session bounds concurrent executions (admission slots), waiting
    submissions (a bounded FIFO queue with deadline shedding), and the
    memory that admitted queries may collectively hold (a shared
    {!Governor.pool} attached to every admitted query's governor).

    The session's own state is domain-safe; the {e storage} underneath
    is not shared — each submitter runs against its own
    {!Dqep_storage.Database}.  Queue-deadline shedding is observed on
    wakeups (completions and other sheds broadcast), so a session whose
    queries carry no deadlines of their own should bound the queue with
    [max_queue] rather than rely on [queue_deadline] alone. *)

type shed_reason =
  | Queue_full  (** the bounded wait queue was full at submission *)
  | Queue_timeout  (** the submission waited past [queue_deadline] *)

val shed_reason_name : shed_reason -> string

val shed_counter : shed_reason -> Dqep_obs.Counter.t
(** The taxonomy counter a shed of this reason increments
    ([Shed_queue_full] / [Shed_queue_timeout]), so callers tallying
    sheds attribute them by reason rather than as one lump. *)

type outcome =
  | Completed of Iterator.tuple list * Executor.run_stats
  | Failed of Resilience.failure
      (** every in-flight error, including governor violations, as the
          supervisor's typed failure *)
  | Shed of shed_reason  (** rejected by admission; never started *)

type config = {
  max_inflight : int;
      (** admission slots — queries executing concurrently (default from
          [DQEP_MAX_INFLIGHT], else 4) *)
  max_queue : int;
      (** submissions allowed to wait for a slot; beyond it submissions
          are shed with {!Queue_full} (default 16) *)
  queue_deadline : float option;
      (** seconds a submission may wait before it is shed with
          {!Queue_timeout} (default none) *)
  memory_pool_bytes : int option;
      (** capacity of the session's shared memory pool; admitted
          queries' charges count against it in addition to their own
          budgets (default none) *)
  resilience : Resilience.config;
      (** supervisor configuration for every admitted query *)
  precheck : bool;
      (** statically reject admitted plans whose guaranteed working set
          ({!Dqep_analysis.Absint.guaranteed_bytes}) cannot fit the
          query's memory budget or the session pool — the outcome is
          [Failed (Rejected [DQEP503])] without executing anything
          (default [true]) *)
}

val config :
  ?max_inflight:int ->
  ?max_queue:int ->
  ?queue_deadline:float ->
  ?memory_pool_bytes:int ->
  ?resilience:Resilience.config ->
  ?precheck:bool ->
  unit ->
  config
(** @raise Invalid_argument on non-positive [max_inflight] or
    [memory_pool_bytes], or negative [max_queue]/[queue_deadline]. *)

type t

val create : ?config:config -> unit -> t

val memory_pool : t -> Governor.pool option

val obs : t -> Dqep_obs.Trace.t
(** The session-lifetime observation trace: lifecycle counters
    ([Submitted], [Admitted], [Completed], [Failed], [Shed_*]), the
    folded counter totals of every finished run, and peak gauges.
    {!stats} is a view over it. *)

val feedback : t -> Dqep_obs.Feedback.t
(** The session's observation cache: realized selectivity bindings and
    per-operator cardinalities deposited by every completed run. *)

val refined_env : t -> Dqep_cost.Env.t -> Dqep_cost.Env.t
(** Narrow an environment's selectivity priors by the session's observed
    bands ({!Dqep_cost.Env.refine} over
    {!Dqep_obs.Feedback.selectivity_bounds}) — the environment to hand
    the optimizer when re-optimizing within the session. *)

val submit :
  t ->
  ?gov:Governor.t ->
  ?obs:Dqep_obs.Trace.t ->
  ?resilience:Resilience.config ->
  ?clock:(unit -> float) ->
  Dqep_storage.Database.t ->
  Dqep_cost.Bindings.t ->
  Dqep_plans.Plan.t ->
  outcome
(** Wait for admission (FIFO), then run the plan under
    {!Resilience.run} with the caller's governor joined to the session's
    memory pool.  Blocks while queued; every submission gets exactly one
    outcome.  [gov] carries the query's own deadline/budgets and remains
    cancellable by the caller while the query is queued or running
    (a cancellation queued before admission surfaces as
    [Failed (Cancelled _)] on the first check).  [resilience] overrides
    the session's supervisor configuration for this one submission (the
    chaos harness mixes engines per query this way).  [clock] is the
    queue clock, injectable for tests.

    [obs] is this submission's run trace (a taps-enabled private trace
    when omitted): the supervisor records through it, and when the run
    completes its operator taps and the realized bindings are deposited
    into {!feedback}, with its counter deltas folded into {!obs}. *)

type stats = {
  submitted : int;
  admitted : int;
  completed : int;
  failed : int;  (** typed failures, including governor violations *)
  shed_queue_full : int;
  shed_queue_timeout : int;
  peak_inflight : int;
  peak_queued : int;
}

val stats : t -> stats
val inflight : t -> int
val queued : t -> int
