module Timer = Dqep_util.Timer
module Physical = Dqep_algebra.Physical
module Env = Dqep_cost.Env
module Plan = Dqep_plans.Plan
module Startup = Dqep_plans.Startup
module Database = Dqep_storage.Database
module Buffer_pool = Dqep_storage.Buffer_pool
module Trace = Dqep_obs.Trace

type stats = {
  materialized : Plan.t option;
  estimated_rows : float;
  observed_rows : int;
  default_cost : float;
  adapted_cost : float;
  switched : bool;
  run : Executor.run_stats;
}

let pid_map plan =
  let map = Hashtbl.create 64 in
  Plan.iter (fun p -> Hashtbl.replace map p.Plan.pid p) plan;
  map

let shared_subplan (plan : Plan.t) =
  match plan.Plan.op with
  | Physical.Choose_plan -> (
    match plan.Plan.inputs with
    | [] | [ _ ] -> None
    | alternatives ->
      (* Score every subplan occurring in at least two alternatives by
         (cardinality uncertainty x alternatives informed): observing the
         most uncertain, most widely shared input buys the decision
         procedure the most.  Nested choose operators are allowed —
         materialization resolves them with the estimates at hand. *)
      let maps = List.map pid_map alternatives in
      let nodes = Hashtbl.create 64 in
      let counts = Hashtbl.create 64 in
      List.iter
        (fun m ->
          Hashtbl.iter
            (fun pid node ->
              Hashtbl.replace nodes pid node;
              Hashtbl.replace counts pid
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts pid)))
            m)
        maps;
      let score pid (node : Plan.t) =
        let count = Hashtbl.find counts pid in
        if count < 2 || pid = plan.Plan.pid then None
        else begin
          let width = Dqep_util.Interval.width node.Plan.rows in
          if width <= 0. then None
          else Some (width *. float_of_int count, Plan.node_count node)
        end
      in
      Hashtbl.fold
        (fun pid node best ->
          match score pid node with
          | None -> best
          | Some s -> (
            match best with
            | Some (bs, _) when bs >= s -> best
            | _ -> Some (s, node)))
        nodes None
      |> Option.map snd)
  | _ -> None

let plain_run db ?(gov = Governor.none) ?(obs = Trace.null) ?engine ?workers
    bindings plan =
  let tuples, run = Executor.run db ~gov ~obs ?engine ?workers bindings plan in
  let env = Env.of_bindings (Database.catalog db) bindings in
  let cost, _ = Startup.evaluate env run.Executor.resolved_plan in
  ( tuples,
    { materialized = None;
      estimated_rows = 0.;
      observed_rows = 0;
      default_cost = cost;
      adapted_cost = cost;
      switched = false;
      run } )

type observation = {
  observed_rows : int;
  batches : int;
  overrides : (int * float) list;
  materialized : (int * Iterator.tuple list) list;
}

let observe db env ?(gov = Governor.none) ?(obs = Trace.null) ?engine ?workers
    plan ~sub =
  (* Evaluate the shared subplan into a temporary and propagate the
     observation to every subplan computing the same logical result (same
     relations and selections — witnessed by an identical compile-time
     cardinality interval): alternatives that access the observed input
     through a different physical path are costed against reality too.

     The observation itself runs under a taps-enabled trace — the
     caller's when it has taps, a private one otherwise — so the observed
     cardinality is read back off the root operator's tap: the same
     channel feedback re-optimization consumes, rather than a separate
     caller-side accumulator.  The root-batch count ([on_batch]) is kept
     as the fallback for materialized roots, which bypass operator
     compilation entirely. *)
  let ot =
    if Trace.taps_enabled obs then obs else Trace.create ~taps:true ()
  in
  let delivered = ref 0 in
  let tapped_before = Option.value ~default:0 (Trace.tap_rows ot sub.Plan.pid) in
  let temp, profile =
    Executor.execute db env ~gov ~obs:ot ?engine ?workers
      ~on_batch:(fun n -> delivered := !delivered + n)
      sub
  in
  let observed =
    match Trace.tap_rows ot sub.Plan.pid with
    | Some rows when rows - tapped_before > 0 || !delivered = 0 ->
      rows - tapped_before
    | Some _ | None -> !delivered
  in
  (* The row engine delivers the whole temporary as one "batch". *)
  let batches =
    match profile.Exec_common.engine with
    | Exec_common.Row -> 1
    | Exec_common.Batch -> profile.Exec_common.batches
  in
  let equivalent =
    Plan.fold
      (fun acc (node : Plan.t) ->
        if
          node.Plan.rels = sub.Plan.rels
          && Dqep_util.Interval.equal node.Plan.rows sub.Plan.rows
        then node :: acc
        else acc)
      [] plan
  in
  let overrides =
    List.map (fun (n : Plan.t) -> (n.Plan.pid, float_of_int observed)) equivalent
  in
  (* The temporary is unordered: only splice it in where no sort order
     is promised; ordered equivalents re-execute their own path. *)
  let materialized =
    List.filter_map
      (fun (n : Plan.t) ->
        match n.Plan.props.Dqep_algebra.Props.order with
        | Dqep_algebra.Props.Unordered -> Some (n.Plan.pid, temp)
        | Dqep_algebra.Props.Ordered _ -> None)
      equivalent
  in
  { observed_rows = observed; batches; overrides; materialized }

let run db ?(gov = Governor.none) ?(obs = Trace.null) ?engine ?workers
    bindings plan =
  let env = Env.of_bindings (Database.catalog db) bindings in
  let plan = Executor.check_feasible db env plan in
  match shared_subplan plan with
  | None -> plain_run db ~gov ~obs ?engine ?workers bindings plan
  | Some sub ->
    let pool = Database.pool db in
    Buffer_pool.resize pool (Executor.memory_pages env);
    let rt = if Trace.enabled obs then obs else Trace.create () in
    let before = Buffer_pool.stats_of_trace rt in
    Buffer_pool.attach_obs pool rt;
    Fun.protect ~finally:(fun () -> Buffer_pool.detach_obs pool) @@ fun () ->
    let start = Sys.time () in
    (* Phase 1: evaluate the shared subplan into a temporary. *)
    let { observed_rows = observed; batches = _; overrides; materialized } =
      Trace.span rt "observe" (fun () ->
          observe db env ~gov ~obs:rt ?engine ?workers plan ~sub)
    in
    (* Phase 2: decide with the observation, execute with the temporary. *)
    let default_resolution = Startup.resolve env plan in
    (* Cost the start-up-time choice under the observation too, so both
       costs are comparable statements about reality. *)
    let default_cost, _ =
      Startup.evaluate ~overrides env default_resolution.Startup.plan
    in
    let adapted = Startup.resolve ~overrides env plan in
    let tuples, profile =
      Executor.execute db env ~gov ~obs:rt ~materialized ?engine ?workers
        adapted.Startup.plan
    in
    let cpu_seconds = Sys.time () -. start in
    let after = Buffer_pool.stats_of_trace rt in
    ( tuples,
      { materialized = Some sub;
        estimated_rows = Startup.estimated_rows env sub;
        observed_rows = observed;
        default_cost;
        adapted_cost = adapted.Startup.anticipated_cost;
        switched =
          (* Structural comparison via the canonical encoding: resolution
             rebuilds nodes, so pids alone would differ spuriously. *)
          Dqep_plans.Access_module.encode default_resolution.Startup.plan
          <> Dqep_plans.Access_module.encode adapted.Startup.plan;
        run =
          { Executor.tuples = List.length tuples;
            io = Buffer_pool.diff ~before ~after;
            cpu_seconds;
            resolved_plan = adapted.Startup.plan;
            choose_nodes = Plan.choose_count plan;
            retries = 0;
            faults_absorbed = 0;
            budget_aborts = 0;
            failovers = 0;
            replans = 0;
            exec = profile } } )
