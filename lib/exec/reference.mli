(** Naive reference evaluator for logical queries: nested loops over the
    stored data, no indexes, no optimization.  The test oracle every
    physical plan's output is compared against. *)

val eval :
  Dqep_storage.Database.t ->
  Dqep_cost.Bindings.t ->
  Dqep_algebra.Logical.t ->
  Dqep_algebra.Schema.t * Iterator.tuple list
(** Result schema and tuples (in no particular order). *)

val multiset_equal : Iterator.tuple list -> Iterator.tuple list -> bool
(** Order-insensitive comparison of results. *)

val normalize :
  Dqep_algebra.Schema.t -> Iterator.tuple list -> Iterator.tuple list
(** Reorder each tuple's columns into canonical (sorted column) order, so
    results of plans with different join orders become comparable. *)
