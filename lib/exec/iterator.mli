(** Volcano-style demand-driven iterators: open / next / close.

    Re-open contract: [open_] must fully rewind the operator — discard
    any buffered output from a previous consumption and reset every
    position — so that opening an iterator again (even after a partial
    drain followed by [close]) replays the same stream from the start.
    Operators that buffer produced tuples across [next] calls must clear
    that buffer in [open_]; relying on [close] alone is wrong because
    [close] may run while results are still pending.  {!consume} is
    therefore re-entrant: consuming the same iterator twice yields the
    same multiset.  The batch engine's iterators (Batch_exec) honor the
    same contract. *)

type tuple = int array

type t = {
  schema : Dqep_algebra.Schema.t;
  open_ : unit -> unit;
  next : unit -> tuple option;
  close : unit -> unit;
}

val consume : t -> tuple list
(** Open, drain and close, returning all produced tuples in order.
    Re-entrant: see the re-open contract above. *)

val count : t -> int
(** Open, drain and close, returning only the tuple count. *)

val remap : target:Dqep_algebra.Schema.t -> t -> t
(** Present an iterator under [target]'s column order, permuting each
    tuple by column name.  Identity when the orders already agree.
    @raise Invalid_argument if a target column is missing. *)

val of_list : Dqep_algebra.Schema.t -> tuple list -> t
(** A materialized input, for tests. *)
