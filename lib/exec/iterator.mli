(** Volcano-style demand-driven iterators: open / next / close. *)

type tuple = int array

type t = {
  schema : Dqep_algebra.Schema.t;
  open_ : unit -> unit;
  next : unit -> tuple option;
  close : unit -> unit;
}

val consume : t -> tuple list
(** Open, drain and close, returning all produced tuples in order. *)

val count : t -> int
(** Open, drain and close, returning only the tuple count. *)

val of_list : Dqep_algebra.Schema.t -> tuple list -> t
(** A materialized input, for tests. *)
