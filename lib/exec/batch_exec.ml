(* The vectorized batch-at-a-time execution engine.

   A second compilation target for physical plans, alongside the row
   engine in Executor.  Operators exchange Batch.t values (columnar
   blocks of up to [capacity] tuples with a selection vector) instead of
   single tuples, so the per-tuple closure dispatch of the Volcano
   iterator is amortized over a whole block:

   - scans fill batches a page stripe at a time, with the selection
     predicate fused into the scan (the filter refines the selection
     vector during the same pass that materializes the block);
   - base-relation file scans are morsel-driven: the heap file is split
     into fixed-size contiguous page stripes — the morsel size never
     depends on the worker count — and the stripes run as tasks on the
     persistent work-stealing Scheduler pool.  Each stripe stages its
     batches into a lock-free per-stripe output slot (an atomic list,
     written by exactly one worker); the consumer drains the slots in
     stripe order, helping execute pending morsels instead of blocking,
     and re-raises the job's first fault (workers never block on the
     consumer, so a faulted stripe can never deadlock the drain);
   - joins and sort delegate to the same algorithmic cores as the row
     engine (Exec_common: Grace hash partitioning, external sort runs),
     so spilling behavior and multiset semantics are identical by
     construction — the property the differential harness checks.  With
     workers > 1 the cores additionally fan out radix join partitions
     and sort chunks as morsels on the same pool.

   Shared storage is safe to use from concurrent morsels: the buffer
   pool's latch is sharded per page-id bucket and the disk serializes
   its own directory, so this engine takes no execution-wide storage
   lock at all.

   Iterator protocol: as for the row engine (see Iterator), [open_] must
   fully rewind the stream, so consuming an iterator twice — or closing
   it half-drained and consuming again — yields the same multiset. *)

module Schema = Dqep_algebra.Schema
module Physical = Dqep_algebra.Physical
module Predicate = Dqep_algebra.Predicate
module Col = Dqep_algebra.Col
module Env = Dqep_cost.Env
module Plan = Dqep_plans.Plan
module Startup = Dqep_plans.Startup
module Database = Dqep_storage.Database
module Buffer_pool = Dqep_storage.Buffer_pool
module Heap_file = Dqep_storage.Heap_file
module Btree = Dqep_storage.Btree
module Page = Dqep_storage.Page
module Trace = Dqep_obs.Trace
module Counter = Dqep_obs.Counter

type tuple = int array

type iterator = {
  schema : Schema.t;
  open_ : unit -> unit;
  next : unit -> Batch.t option;
  close : unit -> unit;
}

(* Execution-wide context: one per compile. *)
type ctx = {
  db : Database.t;
  env : Env.t;
  gov : Governor.t; (* cancellation token + memory budget; domain-safe *)
  obs : Trace.t;
  mat : (int * tuple list) list;
  ckpt : Checkpoint.t;
  scheduler : Scheduler.t;
  capacity : int;
  log : Exec_common.work_log; (* morsel/serial work units for this run *)
  mutable partitions : int;   (* morsels of the widest exchange *)
}

let consume it =
  it.open_ ();
  Fun.protect ~finally:it.close (fun () ->
      let rec drain acc =
        match it.next () with
        | None -> List.rev acc
        | Some b -> drain (List.rev_append (Batch.to_tuples b) acc)
      in
      drain [])

(* --- generic plumbing ---------------------------------------------------- *)

(* Serve a fixed tuple list (materialized subplans) in batches. *)
let of_tuples ctx schema tuples =
  let pending = ref [] in
  { schema;
    open_ =
      (fun () -> pending := Batch.of_tuples ~capacity:ctx.capacity schema tuples);
    next =
      (fun () ->
        match !pending with
        | [] -> None
        | b :: rest ->
          pending := rest;
          Some b);
    close = (fun () -> pending := []) }

(* --- fused scan + filter ------------------------------------------------- *)

(* The algebra's selection predicates are [col < threshold] with the
   threshold fixed by the environment, so a fused filter is one
   comparison per row over one column array. *)
type fused = { pos : int; cutoff : int }

let refine_fused b { pos; cutoff } =
  Batch.refine b (fun r -> Batch.get_phys b ~col:pos ~row:r < cutoff)

(* --- scans --------------------------------------------------------------- *)

let read_page_tuples ctx page =
  let copied = ref [] in
  Buffer_pool.with_page (Database.pool ctx.db) page (fun p ->
      match p.Page.payload with
      | Page.Heap h ->
        for slot = h.count - 1 downto 0 do
          copied := h.tuples.(slot) :: !copied
        done
      | Page.Free | Page.Btree _ -> invalid_arg "Batch_exec: corrupt heap page");
  !copied

(* Scan a stripe of pages into batches, fusing the filter.  Returns the
   work performed in deterministic units (tuples materialized plus a
   per-page weight) for the schedule model. *)
let scan_stripe ctx schema fused pages ~emit =
  let units = ref 0 in
  let current = ref (Batch.create ~capacity:ctx.capacity schema) in
  let flush () =
    if Batch.physical_length !current > 0 then begin
      Option.iter (refine_fused !current) fused;
      if not (Batch.is_empty !current) then emit !current;
      current := Batch.create ~capacity:ctx.capacity schema
    end
  in
  List.iter
    (fun page ->
      (* One cancellation point per page (on top of the scheduler's
         per-morsel poll): a cancelled governor stops a stripe mid-scan,
         and the raised exception surfaces as the job's fault. *)
      Governor.check ctx.gov;
      let tuples = read_page_tuples ctx page in
      units := !units + 8 + List.length tuples;
      List.iter
        (fun t ->
          if Batch.is_full !current then flush ();
          Batch.push !current t)
        tuples)
    pages;
  flush ();
  !units

(* Pages per scan morsel.  Fixed — decoupled from the worker count — so
   work-stealing balances the tail and the schedule model's cost list is
   a property of the query, not of the configuration. *)
let morsel_pages = 4

(* Per-stripe output staging: each slot is written by exactly the one
   worker that claimed the stripe (lock-free atomic prepend), and the
   consumer drains slots in stripe order with [Atomic.exchange]. *)
type stage = {
  staged : Batch.t list Atomic.t; (* newest first; consumer re-reverses *)
  eos : bool Atomic.t;            (* stripe fully produced *)
}

let exchange_scan ctx schema fused heap =
  (* Sequential state: stream the stripes in file order, lazily. *)
  let stripes = ref [] in
  let buffered = ref [] in
  (* Parallel state. *)
  let job = ref None in
  let slots = ref [||] in
  let drain_pos = ref 0 in
  let quiesce () =
    match !job with
    | None -> ()
    | Some j ->
      (* Help-drain every remaining morsel (faulted jobs claim-skip, so
         this is quick); afterwards no worker touches the slots. *)
      Scheduler.wait j;
      job := None
  in
  let start_parallel parts =
    let arr = Array.of_list parts in
    let n = Array.length arr in
    slots :=
      Array.init n (fun _ -> { staged = Atomic.make []; eos = Atomic.make false });
    drain_pos := 0;
    let tasks =
      Array.init n (fun i () ->
          let slot = (!slots).(i) in
          let units =
            scan_stripe ctx schema fused arr.(i) ~emit:(fun b ->
                let rec push () =
                  let cur = Atomic.get slot.staged in
                  if not (Atomic.compare_and_set slot.staged cur (b :: cur))
                  then push ()
                in
                push ())
          in
          Exec_common.log_morsel (Some ctx.log) units;
          Atomic.set slot.eos true)
    in
    job :=
      Some
        (Scheduler.submit ctx.scheduler
           ~poll:(fun () -> Governor.check ctx.gov)
           tasks)
  in
  { schema;
    open_ =
      (fun () ->
        let parts =
          Heap_file.partition heap
            ~parts:
              (Int.max 1
                 ((Heap_file.page_count heap + morsel_pages - 1) / morsel_pages))
        in
        ctx.partitions <- Int.max ctx.partitions (List.length parts);
        buffered := [];
        if Scheduler.is_parallel ctx.scheduler then begin
          quiesce ();
          start_parallel parts
        end
        else stripes := parts);
    next =
      (fun () ->
        if Scheduler.is_parallel ctx.scheduler then begin
          let rec pop () =
            match !buffered with
            | b :: rest ->
              buffered := rest;
              Some b
            | [] -> (
              match !job with
              | None -> None
              | Some j ->
                (match Scheduler.fault j with Some e -> raise e | None -> ());
                if !drain_pos >= Array.length !slots then None
                else begin
                  let slot = (!slots).(!drain_pos) in
                  let got = Atomic.exchange slot.staged [] in
                  if got <> [] then begin
                    (* Chunks arrive newest-first; re-reversing each
                       chunk preserves emission order across chunks. *)
                    buffered := List.rev got;
                    pop ()
                  end
                  else if Atomic.get slot.eos then begin
                    incr drain_pos;
                    pop ()
                  end
                  else begin
                    (* Help run pending morsels; sleep only when there is
                       neither staged output nor claimable work. *)
                    Scheduler.wait_for j (fun () ->
                        Atomic.get slot.eos
                        || Atomic.get slot.staged <> []
                        || Scheduler.fault j <> None);
                    pop ()
                  end
                end)
          in
          pop ()
        end
        else begin
          (* Sequential: stream the stripes in file order. *)
          let rec go () =
            match !buffered with
            | b :: rest ->
              buffered := rest;
              Some b
            | [] -> (
              match !stripes with
              | [] -> None
              | stripe :: rest ->
                stripes := rest;
                let acc = ref [] in
                let units =
                  scan_stripe ctx schema fused stripe ~emit:(fun b ->
                      acc := b :: !acc)
                in
                Exec_common.log_serial (Some ctx.log) units;
                buffered := List.rev !acc;
                go ())
          in
          go ()
        end);
    close =
      (fun () ->
        quiesce ();
        slots := [||];
        drain_pos := 0;
        stripes := [];
        buffered := []) }

(* B-tree scans: collect the qualifying rids in index order at open, then
   fetch them a batch at a time. *)
let btree_scan ctx schema ~rel ~attr ~hi =
  let rids = ref [] in
  { schema;
    open_ =
      (fun () ->
        let acc = ref [] in
        let proceed, hi_key =
          match hi with
          | Some cutoff -> (cutoff > 0, Some (cutoff - 1))
          | None -> (true, None)
        in
        if proceed then
          Btree.range (Database.pool ctx.db)
            (Database.index ctx.db ~rel ~attr)
            ~lo:None ~hi:hi_key
            (fun _ rid -> acc := rid :: !acc);
        Exec_common.log_serial (Some ctx.log) (List.length !acc);
        rids := List.rev !acc);
    next =
      (fun () ->
        match !rids with
        | [] -> None
        | _ ->
          Governor.check ctx.gov;
          let batch = Batch.create ~capacity:ctx.capacity schema in
          let continue_ = ref true in
          while !continue_ do
            match !rids with
            | [] -> continue_ := false
            | rid :: rest ->
              rids := rest;
              Batch.push batch (Heap_file.fetch (Database.pool ctx.db) rid);
              if Batch.is_full batch then continue_ := false
          done;
          Some batch);
    close = (fun () -> rids := []) }

(* --- output buffering ---------------------------------------------------- *)

(* Accumulate produced tuples into capacity-bounded dense batches. *)
type out_buffer = {
  out_schema : Schema.t;
  cap : int;
  mutable building : Batch.t;
  mutable ready : Batch.t list; (* in emission order *)
}

let out_buffer ctx schema =
  { out_schema = schema;
    cap = ctx.capacity;
    building = Batch.create ~capacity:ctx.capacity schema;
    ready = [] }

let out_push ob t =
  if Batch.is_full ob.building then begin
    ob.ready <- ob.ready @ [ ob.building ];
    ob.building <- Batch.create ~capacity:ob.cap ob.out_schema
  end;
  Batch.push ob.building t

let out_pop ob =
  match ob.ready with
  | b :: rest ->
    ob.ready <- rest;
    Some b
  | [] ->
    if Batch.is_empty ob.building then None
    else begin
      let b = ob.building in
      ob.building <- Batch.create ~capacity:ob.cap ob.out_schema;
      Some b
    end

let out_reset ob =
  ob.building <- Batch.create ~capacity:ob.cap ob.out_schema;
  ob.ready <- []

(* --- compiler ------------------------------------------------------------ *)

let schema_of ctx plan = Plan.schema (Database.catalog ctx.db) plan

let materialized_tuples ctx (plan : Plan.t) = List.assoc_opt plan.Plan.pid ctx.mat

(* Per-operator cardinality tap, the batch-engine counterpart of the row
   engine's per-tuple wrapper: each delivered batch records its selected
   row count in one call.  An operator that delivers nothing still taps
   once with zero rows, so feedback distinguishes "ran empty" from "not
   observed". *)
let tap_iterator obs (plan : Plan.t) it =
  let op = Physical.name plan.Plan.op in
  let pid = plan.Plan.pid in
  let delivered = ref false in
  { it with
    open_ =
      (fun () ->
        delivered := false;
        it.open_ ());
    next =
      (fun () ->
        match it.next () with
        | Some b ->
          delivered := true;
          Trace.tap obs ~pid ~op ~rows:(Batch.length b);
          Some b
        | None ->
          if not !delivered then begin
            delivered := true;
            Trace.tap obs ~pid ~op ~rows:0
          end;
          None) }

let rec compile_node ctx (plan : Plan.t) : iterator =
  let it = compile_op ctx plan in
  if Trace.taps_enabled ctx.obs then tap_iterator ctx.obs plan it else it

and compile_op ctx (plan : Plan.t) : iterator =
  match materialized_tuples ctx plan with
  | Some tuples ->
    (* The subplan was already materialized (mid-query adaptation). *)
    of_tuples ctx (schema_of ctx plan) tuples
  | None -> (
    match plan.Plan.op with
    | Physical.File_scan rel ->
      exchange_scan ctx
        (Exec_common.base_schema ctx.db rel)
        None (Database.heap ctx.db rel)
    | Physical.Btree_scan { rel; attr } ->
      btree_scan ctx (Exec_common.base_schema ctx.db rel) ~rel ~attr ~hi:None
    | Physical.Filter_btree_scan { rel; attr; pred } ->
      btree_scan ctx
        (Exec_common.base_schema ctx.db rel)
        ~rel ~attr
        ~hi:(Some (Pred_eval.threshold ctx.env pred))
    | Physical.Filter pred -> filter ctx plan pred
    | Physical.Hash_join preds -> hash_join ctx plan preds
    | Physical.Merge_join preds -> merge_join ctx plan preds
    | Physical.Index_join { preds; inner_rel; inner_attr; inner_filter } ->
      index_join ctx plan preds ~inner_rel ~inner_attr ~inner_filter
    | Physical.Sort cols -> sort ctx plan cols
    | Physical.Choose_plan ->
      let resolved = Startup.resolve ctx.env plan in
      (* Alternatives may concatenate the same columns in different
         orders; the parent binds positions against this node's nominal
         schema (the first alternative's), so permute if needed. *)
      let it = compile_node ctx resolved.Startup.plan in
      let target = schema_of ctx plan in
      if Schema.columns it.schema = Schema.columns target then it
      else
        { it with
          schema = target;
          next =
            (fun () ->
              match it.next () with
              | None -> None
              | Some b -> Some (Batch.remap ~target b)) })

and compile_child ctx (plan : Plan.t) =
  match plan.Plan.inputs with
  | [ child ] -> compile_node ctx child
  | _ -> invalid_arg "Batch_exec: expected unary operator"

and compile_children ctx (plan : Plan.t) =
  match plan.Plan.inputs with
  | [ l; r ] -> (compile_node ctx l, compile_node ctx r)
  | _ -> invalid_arg "Batch_exec: expected binary operator"

(* Filter.  When the input is a base-relation file scan the predicate is
   fused into the (possibly parallel) scan itself; otherwise a standalone
   vectorized filter refines each batch's selection vector in place. *)
and filter ctx (plan : Plan.t) pred =
  let fusable =
    match plan.Plan.inputs with
    | [ ({ Plan.op = Physical.File_scan rel; _ } as child) ]
      when materialized_tuples ctx child = None ->
      Some rel
    | _ -> None
  in
  match fusable with
  | Some rel ->
    let schema = Exec_common.base_schema ctx.db rel in
    let pos = Schema.position_exn schema pred.Predicate.target in
    let cutoff = Pred_eval.threshold ctx.env pred in
    exchange_scan ctx schema (Some { pos; cutoff }) (Database.heap ctx.db rel)
  | None ->
    let child = compile_child ctx plan in
    let pos = Schema.position_exn child.schema pred.Predicate.target in
    let cutoff = Pred_eval.threshold ctx.env pred in
    { schema = child.schema;
      open_ = child.open_;
      next =
        (fun () ->
          let rec go () =
            match child.next () with
            | None -> None
            | Some b ->
              refine_fused b { pos; cutoff };
              if Batch.is_empty b then go () else Some b
          in
          go ());
      close = child.close }

and hash_join ctx (plan : Plan.t) preds =
  let left_it, right_it = compile_children ctx plan in
  let left_schema = left_it.schema and right_schema = right_it.schema in
  let schema = Schema.concat left_schema right_schema in
  let left_width, right_width =
    match plan.Plan.inputs with
    | [ l; r ] -> (l.Plan.bytes_per_row, r.Plan.bytes_per_row)
    | _ -> assert false
  in
  let residual =
    Pred_eval.equi_matches ~left:left_schema ~right:right_schema preds
  in
  let ob = out_buffer ctx schema in
  { schema;
    open_ =
      (fun () ->
        out_reset ob;
        (* Children are drained one at a time, so at most one exchange
           subtree is live at once; its domains are joined by [consume]'s
           close before the next starts. *)
        let build = consume left_it in
        (* Build completion is a blocking point: checkpoint the fully
           consumed build side before any probe work. *)
        (match plan.Plan.inputs with
        | [ l; _ ] ->
          Checkpoint.take ctx.ckpt ctx.db ctx.env l ~schema:left_schema build
        | _ -> ());
        let probe = consume right_it in
        Exec_common.hash_join_core ~gov:ctx.gov ~obs:ctx.obs
          ~sched:ctx.scheduler ~log:ctx.log ctx.db ctx.env
          ~left_schema
          ~right_schema
          ~left_width ~right_width ~preds
          ~emit:(fun l r ->
            if residual l r then out_push ob (Array.append l r))
          build probe);
    next = (fun () -> out_pop ob);
    close = (fun () -> out_reset ob) }

and merge_join ctx (plan : Plan.t) preds =
  let left_it, right_it = compile_children ctx plan in
  let left_schema = left_it.schema and right_schema = right_it.schema in
  let schema = Schema.concat left_schema right_schema in
  let first =
    match preds with
    | p :: _ -> p
    | [] -> invalid_arg "Batch_exec: merge join without predicates"
  in
  let lpos = Schema.position_exn left_schema first.Predicate.left in
  let rpos = Schema.position_exn right_schema first.Predicate.right in
  let right_width =
    match plan.Plan.inputs with
    | [ _; r ] -> r.Plan.bytes_per_row
    | _ -> invalid_arg "Batch_exec: merge join expects two inputs"
  in
  let residual =
    Pred_eval.equi_matches ~left:left_schema ~right:right_schema preds
  in
  let ob = out_buffer ctx schema in
  { schema;
    open_ =
      (fun () ->
        out_reset ob;
        let left = consume left_it in
        let right = Array.of_list (consume right_it) in
        Exec_common.log_serial (Some ctx.log)
          (List.length left + Array.length right);
        (* The materialized right side is the operator's working set;
           charge it for the duration of the merge pass. *)
        Governor.with_charge ctx.gov
          (Array.length right * Int.max 1 right_width)
          (fun () ->
            (* Same pointer discipline as the row engine: never advance
               the group pointer past the current key — the next left
               tuple may carry it again. *)
            let rpointer = ref 0 in
            List.iter
              (fun l ->
                Governor.check ctx.gov;
                let key = l.(lpos) in
                while
                  !rpointer < Array.length right
                  && right.(!rpointer).(rpos) < key
                do
                  incr rpointer
                done;
                let stop = ref !rpointer in
                while !stop < Array.length right && right.(!stop).(rpos) = key do
                  (let r = right.(!stop) in
                   if residual l r then out_push ob (Array.append l r));
                  incr stop
                done)
              left));
    next = (fun () -> out_pop ob);
    close = (fun () -> out_reset ob) }

and index_join ctx (plan : Plan.t) preds ~inner_rel ~inner_attr ~inner_filter =
  let outer_it =
    match plan.Plan.inputs with
    | [ o ] -> compile_node ctx o
    | _ -> invalid_arg "Batch_exec: index join expects one input"
  in
  let outer_schema = outer_it.schema in
  let inner_schema = Exec_common.base_schema ctx.db inner_rel in
  let schema = Schema.concat outer_schema inner_schema in
  let probe_pred =
    match
      List.find_opt
        (fun (p : Predicate.equi) ->
          p.Predicate.right.Col.rel = inner_rel
          && p.Predicate.right.Col.attr = inner_attr)
        preds
    with
    | Some p -> p
    | None -> invalid_arg "Batch_exec: index join predicate not found"
  in
  let outer_pos = Schema.position_exn outer_schema probe_pred.Predicate.left in
  let residual =
    Pred_eval.equi_matches ~left:outer_schema ~right:inner_schema preds
  in
  let inner_ok =
    match inner_filter with
    | None -> fun _ -> true
    | Some pred -> Pred_eval.select_matches ctx.env inner_schema pred
  in
  let ob = out_buffer ctx schema in
  { schema;
    open_ =
      (fun () ->
        out_reset ob;
        outer_it.open_ ());
    next =
      (fun () ->
        (* Probe the inner index for a whole outer batch at a time.  The
           outer side may be a live parallel exchange; the sharded buffer
           pool makes the consumer-side probes safe alongside it. *)
        let rec go () =
          match out_pop ob with
          | Some b -> Some b
          | None -> (
            match outer_it.next () with
            | None -> None
            | Some outer_batch ->
              Governor.check ctx.gov;
              let n = Batch.length outer_batch in
              Exec_common.log_serial (Some ctx.log) n;
              for i = 0 to n - 1 do
                let outer = Batch.tuple outer_batch i in
                let rids =
                  Btree.search (Database.pool ctx.db)
                    (Database.index ctx.db ~rel:inner_rel ~attr:inner_attr)
                    outer.(outer_pos)
                in
                List.iter
                  (fun rid ->
                    let inner = Heap_file.fetch (Database.pool ctx.db) rid in
                    if inner_ok inner && residual outer inner then
                      out_push ob (Array.append outer inner))
                  rids
              done;
              go ())
        in
        go ());
    close =
      (fun () ->
        outer_it.close ();
        out_reset ob) }

and sort ctx (plan : Plan.t) cols =
  let child = compile_child ctx plan in
  let schema = child.schema in
  let positions = List.map (Schema.position_exn schema) cols in
  let compare_tuples = Exec_common.compare_on positions in
  let width = plan.Plan.bytes_per_row in
  let pending = ref [] in
  { schema;
    open_ =
      (fun () ->
        let tuples = consume child in
        let sorted =
          Exec_common.sort_core ~gov:ctx.gov ~obs:ctx.obs ~sched:ctx.scheduler
            ~log:ctx.log ctx.db ctx.env ~width ~compare_tuples tuples
        in
        (* The sort's output is fully materialized here — the other
           blocking point — and carries the node's order property. *)
        Checkpoint.take ctx.ckpt ctx.db ctx.env plan ~schema sorted;
        pending := Batch.of_tuples ~capacity:ctx.capacity schema sorted);
    next =
      (fun () ->
        match !pending with
        | [] -> None
        | b :: rest ->
          pending := rest;
          Some b);
    close = (fun () -> pending := []) }

(* --- entry points -------------------------------------------------------- *)

let make_ctx db env ~gov ~obs ~materialized ~checkpoint ~workers ~capacity =
  (* [Scheduler.create] binds to the process-wide persistent pool:
     worker domains are spawned once and reused across queries and
     sessions, never per execution. *)
  let scheduler = Scheduler.create ~workers in
  { db;
    env;
    gov;
    obs;
    mat = materialized;
    ckpt = checkpoint;
    scheduler;
    capacity;
    log = Exec_common.work_log ();
    partitions = 0 }

let compile_with db env ?(gov = Governor.none) ?(obs = Trace.null)
    ?(materialized = []) ?(checkpoint = Checkpoint.disabled) ?(workers = 1)
    ?(capacity = Batch.default_capacity) plan =
  let ctx =
    make_ctx db env ~gov ~obs ~materialized ~checkpoint ~workers ~capacity
  in
  (ctx, compile_node ctx plan)

(* Execute a plan and return its tuples plus the run's execution profile.
   Per-batch accounting happens at the plan root: [on_batch] (when given)
   observes every root batch's selected row count as it is delivered —
   Midquery uses this to accumulate cardinalities batch by batch. *)
let run_plan db env ?(gov = Governor.none) ?(obs = Trace.null)
    ?(materialized = []) ?(checkpoint = Checkpoint.disabled) ?(workers = 1)
    ?(capacity = Batch.default_capacity) ?on_batch plan =
  let ctx, it =
    compile_with db env ~gov ~obs ~materialized ~checkpoint ~workers ~capacity
      plan
  in
  let batches = ref 0 and max_rows = ref 0 and total_rows = ref 0 in
  let counting =
    { it with
      next =
        (fun () ->
          Governor.check gov;
          match it.next () with
          | None -> None
          | Some b ->
            let n = Batch.length b in
            Governor.count_rows gov n;
            Trace.add obs Counter.Rows_out n;
            Trace.incr obs Counter.Batches_out;
            incr batches;
            max_rows := Int.max !max_rows n;
            total_rows := !total_rows + n;
            Option.iter (fun f -> f n) on_batch;
            Some b) }
  in
  let tuples = consume counting in
  let profile =
    { Exec_common.engine = Exec_common.Batch;
      batches = !batches;
      max_batch_rows = !max_rows;
      rows_per_batch =
        (if !batches = 0 then 0.
         else float_of_int !total_rows /. float_of_int !batches);
      partitions = ctx.partitions;
      workers = Scheduler.workers ctx.scheduler;
      serial_units = ctx.log.Exec_common.serial_units;
      morsel_units_ = Exec_common.morsel_units ctx.log }
  in
  (tuples, profile)
