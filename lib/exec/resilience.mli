(** A resilient execution supervisor: bounded retry, an I/O budget
    guard, and graceful degradation through choose-plan alternatives.

    Dynamic plans keep several cost-incomparable alternatives until
    run-time ({!Dqep_plans.Startup}); this module exploits the same
    structure for fault tolerance.  When the chosen alternative fails —
    a transient fault persists past the retry budget, a page is truly
    broken, or the run's physical I/O blows past its anticipated cost —
    the supervisor re-enters the decision procedure with the failed
    alternative excluded and carries any observed cardinalities along
    ({!Midquery.observe}), falling back through the plan DAG until an
    alternative completes or all are exhausted.

    Backoff between retries is deterministic and {e modeled}, not slept:
    the accumulated delay is reported in {!stats.backoff_seconds} so
    tests and benchmarks stay fast and reproducible. *)

type config = {
  max_retries : int;
      (** transient-fault retries per chosen plan before failing over
          (default 2) *)
  backoff_base : float;
      (** modeled delay before retry [n] is [backoff_base *. 2. ** n]
          seconds (default 0.01) *)
  io_budget_factor : float option;
      (** observed physical I/O may exceed the anticipated cost by this
          factor before the attempt is aborted; [None] defers to
          {!Dqep_cost.Env.io_budget_factor}, [Some 0.] disables the
          guard *)
  max_failovers : int;
      (** bound on re-resolutions onto other alternatives (default 8) *)
  observe_on_failover : bool;
      (** materialize the plan's shared subplan on first failover so the
          re-resolution decides with observed cardinalities
          (default true; best-effort — observation failures are
          swallowed) *)
  engine : Exec_common.engine option;
      (** execution engine for every attempt; [None] defers to
          [DQEP_ENGINE] (see {!Executor.execute}) *)
  workers : int option;
      (** exchange workers for the batch engine; [None] defers to
          [DQEP_WORKERS].  Faults raised inside a parallel exchange
          partition surface as typed errors at the merge and take the
          same retry/failover path as row-engine faults. *)
}

val config :
  ?max_retries:int ->
  ?backoff_base:float ->
  ?io_budget_factor:float ->
  ?max_failovers:int ->
  ?observe_on_failover:bool ->
  ?engine:Exec_common.engine ->
  ?workers:int ->
  unit ->
  config

val default : config

type failure =
  | Infeasible of Dqep_plans.Validate.problem list
      (** activation-time validation failed and pruning left no feasible
          plan *)
  | Rejected of Dqep_util.Diagnostic.t list
      (** the static plan verifier found corruption beyond catalog drift
          ({!Executor.Invalid_plan}); the plan never started *)
  | Exhausted of { excluded : int list; last_error : exn }
      (** no surviving choose-plan alternative completes; [excluded]
          lists the alternative pids ruled out along the way and
          [last_error] is the error that ended the final attempt *)

val pp_failure : Format.formatter -> failure -> unit

type stats = {
  retries : int;  (** attempts repeated after a transient fault *)
  faults_absorbed : int;  (** injected faults caught by the supervisor *)
  budget_aborts : int;  (** attempts aborted by the I/O budget guard *)
  failovers : int;  (** re-resolutions onto another alternative *)
  backoff_seconds : float;  (** total modeled backoff delay *)
  attempts : int;  (** executions started, including the successful one *)
}

val run :
  ?config:config ->
  Dqep_storage.Database.t ->
  Dqep_cost.Bindings.t ->
  Dqep_plans.Plan.t ->
  (Iterator.tuple list * Executor.run_stats, failure) result * stats
(** Supervised execution.  On success the embedded
    {!Executor.run_stats} has its resilience counters filled in and its
    I/O window covers the final (successful) attempt.  [stats] is
    reported in both arms, so failed runs are observable too. *)
