(** A resilient execution supervisor: bounded retry, an I/O budget
    guard, resource governance, and graceful degradation through
    choose-plan alternatives.

    Dynamic plans keep several cost-incomparable alternatives until
    run-time ({!Dqep_plans.Startup}); this module exploits the same
    structure for fault tolerance.  When the chosen alternative fails —
    a transient fault persists past the retry budget, a page is truly
    broken, the run's physical I/O blows past its anticipated cost, or
    its working set cannot fit the memory budget even after maximal
    spilling — the supervisor re-enters the decision procedure with the
    failed alternative excluded and carries any observed cardinalities
    along ({!Midquery.observe}), falling back through the plan DAG until
    an alternative completes or all are exhausted.  A memory-budget
    abort additionally lowers the memory grant for the re-resolution, so
    the decision procedure prefers a lower-memory alternative.

    Governor violations that no alternative can repair are their own
    typed outcomes: a deadline or cancellation ends the run immediately
    ({!Deadline_exceeded}, {!Cancelled}) — retrying cannot buy back
    wall-clock time — and a memory violation with no viable fallback
    reports {!Memory_exceeded}.

    Backoff between retries is deterministic and {e modeled}, not slept:
    full-jitter exponential delays drawn from a generator seeded by
    {!config.backoff_seed}, accumulated into {!stats.backoff_seconds},
    so tests and benchmarks stay fast and exactly reproducible. *)

type config = {
  max_retries : int;
      (** transient-fault retries per chosen plan before failing over
          (default 2) *)
  backoff_base : float;
      (** modeled delay before retry [n] is uniform over
          [\[0, backoff_base *. 2. ** n)] seconds — full jitter
          (default 0.01) *)
  backoff_cap : float;
      (** ceiling on the jitter envelope: the delay bound for any attempt
          is [min (backoff_base *. 2. ** n) backoff_cap], so every
          sampled delay lies in [\[0, backoff_cap\]] regardless of the
          attempt number (default 1.0; must be positive) *)
  backoff_seed : int;
      (** seed of the jitter generator ({!Dqep_util.Rng}); the same seed
          reproduces the same backoff schedule (default [0x5eed]) *)
  io_budget_factor : float option;
      (** observed physical I/O may exceed the anticipated cost by this
          factor before the attempt is aborted; [None] defers to
          {!Dqep_cost.Env.io_budget_factor}, [Some 0.] disables the
          guard *)
  max_failovers : int;
      (** bound on re-resolutions onto other alternatives (default 8) *)
  observe_on_failover : bool;
      (** materialize the plan's shared subplan on first failover so the
          re-resolution decides with observed cardinalities
          (default true; best-effort — observation failures are
          swallowed) *)
  engine : Exec_common.engine option;
      (** execution engine for every attempt; [None] defers to
          [DQEP_ENGINE] (see {!Executor.execute}) *)
  workers : int option;
      (** exchange workers for the batch engine; [None] defers to
          [DQEP_WORKERS].  Faults raised inside a parallel exchange
          partition surface as typed errors at the merge and take the
          same retry/failover path as row-engine faults. *)
  checkpoints : bool;
      (** materialize checkpoints at blocking points ({!Checkpoint}) and
          validate observed cardinalities against the plan's validity
          band; defaults to [DQEP_CHECKPOINTS=1] (off when unset), so
          checkpointed recovery is strictly opt-in *)
  checkpoint_tolerance : float;
      (** width of the validity band around the point estimate [e]:
          [\[e / tolerance, (e + 1) * tolerance\]]
          (default {!Checkpoint.default_tolerance}) *)
  max_replans : int;
      (** bound on incremental re-optimizations per supervised run
          (default 2) *)
  replan : (rels_rows:(string * float) list -> Dqep_plans.Plan.t option) option;
      (** incremental re-planner invoked on a busted estimate with every
          checkpointed observation (keyed by relation set); returns the
          replacement plan, or [None] to decline.  [None] (the default)
          turns a busted estimate into the typed {!Estimate_busted}
          failure instead.  {!Dqep_optimizer}'s [Reoptimize.replanner]
          is the intended callback — the supervisor itself stays free of
          an optimizer dependency. *)
  risk : Dqep_cost.Risk.t;
      (** risk posture handed to every start-up re-resolution
          ({!Dqep_plans.Startup.resolve}): how residual cost uncertainty
          (e.g. a lowered interval memory grant after a memory abort) is
          scalarized when picking among choose-plan alternatives.
          Default [Expected] — the historical midpoint behaviour *)
}

val config :
  ?max_retries:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?backoff_seed:int ->
  ?io_budget_factor:float ->
  ?max_failovers:int ->
  ?observe_on_failover:bool ->
  ?engine:Exec_common.engine ->
  ?workers:int ->
  ?checkpoints:bool ->
  ?checkpoint_tolerance:float ->
  ?max_replans:int ->
  ?replan:(rels_rows:(string * float) list -> Dqep_plans.Plan.t option) ->
  ?risk:Dqep_cost.Risk.t ->
  unit ->
  config

val default : config

val backoff_delay : config -> Dqep_util.Rng.t -> attempt:int -> float
(** The modeled full-jitter delay drawn before retry [attempt]: uniform
    over [\[0, min (backoff_base *. 2. ** attempt) backoff_cap)].
    Exposed so property tests can pin the [\[0, backoff_cap\]] envelope
    for every attempt number.
    @raise Invalid_argument if [attempt < 0]. *)

type failure =
  | Infeasible of Dqep_plans.Validate.problem list
      (** activation-time validation failed and pruning left no feasible
          plan *)
  | Rejected of Dqep_util.Diagnostic.t list
      (** the static plan verifier found corruption beyond catalog drift
          ({!Executor.Invalid_plan}); the plan never started *)
  | Exhausted of { excluded : int list; last_error : exn }
      (** no surviving choose-plan alternative completes; [excluded]
          lists the alternative pids ruled out along the way and
          [last_error] is the error that ended the final attempt *)
  | Deadline_exceeded of { elapsed : float; budget : float }
      (** the governor's wall-clock budget ran out (seconds); the run
          ends immediately — no retry or failover *)
  | Memory_exceeded of { budget : int; in_use : int; requested : int }
      (** a memory-budget violation (bytes) that no lower-memory
          alternative could repair *)
  | Cancelled of string
      (** the governor was cancelled (explicitly, by row limit, or by an
          injected test cancellation); the reason names the source *)
  | Estimate_busted of { pid : int; observed : int; lo : float; hi : float }
      (** a checkpointed observation escaped the plan's validity band and
          no re-plan recovery was available (no [replan] callback, replan
          budget spent, or the re-planner declined); [pid] is the plan
          node whose cardinality busted the estimate *)

val pp_failure : Format.formatter -> failure -> unit

type stats = {
  retries : int;  (** attempts repeated after a transient fault *)
  faults_absorbed : int;  (** injected faults caught by the supervisor *)
  budget_aborts : int;  (** attempts aborted by the I/O budget guard *)
  memory_aborts : int;
      (** attempts aborted by the governor's memory budget (each one
          lowers the grant and fails over) *)
  failovers : int;  (** re-resolutions onto another alternative *)
  backoff_seconds : float;  (** total modeled backoff delay *)
  attempts : int;  (** executions started, including the successful one *)
  replans : int;  (** incremental re-optimizations after busted estimates *)
  checkpoints_taken : int;  (** intermediates materialized at blocking points *)
  resume_hits : int;  (** checkpoints served to later attempts *)
}

val run :
  ?config:config ->
  ?gov:Governor.t ->
  ?obs:Dqep_obs.Trace.t ->
  Dqep_storage.Database.t ->
  Dqep_cost.Bindings.t ->
  Dqep_plans.Plan.t ->
  (Iterator.tuple list * Executor.run_stats, failure) result * stats
(** Supervised execution.  On success the embedded
    {!Executor.run_stats} has its resilience counters filled in and its
    I/O window covers the final (successful) attempt.  [stats] is
    reported in both arms, so failed runs are observable too.

    [gov] (default {!Governor.none}) governs every attempt {e and} the
    failover observation: deadlines, cancellation, memory budgets and
    row limits all surface here as typed failures, never as escaped
    exceptions.

    [obs] (default {!Dqep_obs.Trace.null}) is the run's observation
    trace: the supervisor's counters ([Attempts], [Retries],
    [Faults_absorbed], [Budget_aborts], [Memory_aborts], [Failovers],
    [Deadline_aborts], [Cancellations], [Replans], [Checkpoints_taken],
    [Checkpoint_bytes], [Resume_hits]) land there, the buffer pool is
    teed into it for the whole supervised run, attempts, the failover
    observation and re-planning run inside "attempt"/"observe"/"replan"
    spans, and [stats] is computed as a view over the trace's deltas.

    With [config.checkpoints] on, every attempt materializes
    checkpoints at its blocking points; later attempts — bounded retries
    after transient faults, failovers, and replanned runs — resume from
    them instead of redoing completed sort/build work, and checkpoint
    bytes are charged to [gov] for the duration of the supervised run
    and always rolled back at the end. *)
