(** Checkpointed intermediates at blocking boundaries.

    The spilling cores ({!Exec_common}) fully materialize an input at a
    hash join's build completion and at a sort's output — the natural
    blocking points of the paper's operator tree.  A checkpoint registry
    captures those materializations into governor-accounted,
    durable-until-{!release} state, stamped with the validity band the
    subplan was costed under.

    The registry serves three recovery roles for {!Resilience}:

    - {b fault detection}: {!take} raises {!Estimate_busted} when the
      observed cardinality at a blocking point escapes the plan's
      validity band — a busted estimate becomes a typed, recoverable
      fault instead of a silent cost-correctness failure;
    - {b re-plan splicing}: after an incremental re-optimization,
      {!resume_for} matches checkpoints to the new plan's nodes by
      logical fingerprint (relation set + selection predicates) and
      hands back materialized inputs, remapped into each node's schema;
    - {b retry-from-checkpoint}: a transient [Io_fault] retry of the
      {e same} plan resumes from the blocking points already passed,
      re-reading strictly fewer base pages than a cold restart. *)

exception
  Estimate_busted of {
    pid : int;  (** plan node whose observation escaped *)
    observed : int;  (** cardinality observed at the blocking point *)
    lo : float;  (** validity band lower bound *)
    hi : float;  (** validity band upper bound *)
  }
(** A tap observation at a checkpoint escaped the plan's validity range.
    Raised by {!take} at most once per logical fingerprint; the
    checkpoint itself is stored before raising, so recovery can splice
    over the work already done. *)

type t

val disabled : t
(** The inert registry: {!take} and {!resume_for} are no-ops.  Every
    execution entry point defaults to it, so checkpointing is strictly
    opt-in. *)

val default_tolerance : float

val create :
  ?tolerance:float -> ?gov:Governor.t -> ?obs:Dqep_obs.Trace.t -> unit -> t
(** A live registry.  [tolerance] (default {!default_tolerance}) widens
    the validity band around the point estimate [e] to
    [\[e / tolerance, (e + 1) × tolerance\]]; must be [> 1].  Checkpoint
    bytes are charged to [gov] until {!release}; takes, bytes and resume
    hits are counted on [obs]. *)

val enabled : t -> bool

val fingerprint : Dqep_plans.Plan.t -> string
(** The logical fingerprint entries are keyed by: relation set plus the
    deduplicated selection predicates applied anywhere in the subtree
    (alternative-invariant across one logical group).  Mirrored by
    [Dqep_analysis.Analyses.fingerprint] — the analysis layer cannot
    depend on this one — and held in lockstep by a differential test. *)

val take :
  t ->
  Dqep_storage.Database.t ->
  Dqep_cost.Env.t ->
  Dqep_plans.Plan.t ->
  schema:Dqep_algebra.Schema.t ->
  Iterator.tuple list ->
  unit
(** [take t db env plan ~schema tuples] checkpoints the fully
    materialized [tuples] of [plan] (produced in [schema]'s column
    order), stamped with the validity band derived from [env].
    Idempotent per logical fingerprint.  A checkpoint that does not fit
    the governor's budget is skipped — materialization limits never fail
    the query.
    @raise Estimate_busted when [List.length tuples] escapes the band. *)

val resume_for :
  t -> Dqep_storage.Database.t -> Dqep_plans.Plan.t -> (int * Iterator.tuple list) list
(** Materialized inputs for every node of [plan] a checkpoint can serve,
    as [(pid, tuples)] splices for the engines' [materialized] hook.
    Matching is by logical fingerprint; tuples are remapped into the
    node's schema, and an ordered node is served only when the stored
    sort order satisfies it. *)

val overrides_for :
  t -> Dqep_storage.Database.t -> Dqep_plans.Plan.t -> (int * float) list
(** Observed cardinalities, as startup-time overrides for
    [Startup.resolve] — re-decisions are made against reality, not the
    original priors.  Covers exactly the nodes {!resume_for} will serve:
    [Startup.resolve] keeps an overridden node's subtree verbatim on the
    contract that its materialized tuples are spliced in by pid, so an
    override must never outrun the splice. *)

val rels_observations : t -> (string * float) list
(** Every checkpoint's observed cardinality keyed by its relation set
    ([rels_key]) — the currency of incremental re-optimization. *)

val entry_count : t -> int

val charged_bytes : t -> int
(** Bytes currently held against the governor (0 after {!release}). *)

val release : t -> unit
(** Roll every checkpoint's bytes back out of the governor and drop the
    intermediates.  {!Resilience} calls this when the supervised run
    ends, on both arms — checkpoint bytes can never outlive the query. *)
