(** Plain-text experiment reports: aligned tables with notes, also
    exportable as CSV. *)

type t = {
  id : string;  (** experiment id, e.g. "fig4" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string -> title:string -> header:string list ->
  rows:string list list -> ?notes:string list -> unit -> t

val render : Format.formatter -> t -> unit
val to_csv : t -> string

val f2 : float -> string
(** Fixed 2-decimal rendering. *)

val f4 : float -> string
val g3 : float -> string
(** Compact significant-digit rendering. *)
