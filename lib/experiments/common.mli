(** Shared measurement harness for the paper's Section 6 experiments.

    For one query and one uncertainty setting it produces every quantity
    of Figure 3's notation:
    - [a]: optimization time of the static plan (measured CPU);
    - [e]: optimization time of the dynamic plan (measured CPU);
    - [b] / [f]: activation times of static/dynamic plans — catalog
      validation plus access-module I/O (modelled from plan size) plus,
      for dynamic plans, the measured choose-plan decision CPU;
    - per random binding i: [ci] (static plan's execution cost), [gi]
      (resolved dynamic plan's execution cost), [di] (run-time-optimized
      plan's execution cost), and the run-time optimization time.

    Execution costs are the optimizer's anticipated costs under the true
    bindings, per the paper's footnote 4. *)

type uncertainty = Sel_only | Sel_and_memory

val uncertainty_label : uncertainty -> string

type measurement = {
  query : Dqep_workload.Queries.t;
  uncertainty : uncertainty;
  uncertain_vars : int;
  trials : int;
  cpu_scale : float;
      (** calibration factor translating measured host-CPU seconds to the
          paper's reference machine (DECstation 5000/125), applied
          wherever measured CPU is combined with the modelled I/O
          constants; raw measured times are also reported *)
  (* compile-time *)
  static_opt_time : float;  (** a *)
  dynamic_opt_time : float;  (** e *)
  static_stats : Dqep_optimizer.Optimizer.stats;
  dynamic_stats : Dqep_optimizer.Optimizer.stats;
  static_plan : Dqep_plans.Plan.t;
  dynamic_plan : Dqep_plans.Plan.t;
  static_nodes : int;
  dynamic_nodes : int;
  (* activation *)
  static_activation : float;  (** b: base + access-module I/O *)
  dynamic_activation_io : float;  (** access-module I/O part of f *)
  startup_cpu_mean : float;  (** measured decision CPU part of f *)
  dynamic_activation : float;  (** f: base + I/O + decision CPU *)
  (* per-invocation execution costs *)
  static_exec : float list;  (** ci *)
  dynamic_exec : float list;  (** gi *)
  runtime_exec : float list;  (** di *)
  runtime_opt_times : float list;  (** per-binding optimization time *)
  choose_decisions : int;  (** decisions per start-up in the dynamic plan *)
}

val measure :
  ?trials:int ->
  ?seed:int ->
  ?cpu_scale:float ->
  ?options:Dqep_optimizer.Optimizer.options ->
  Dqep_workload.Queries.t ->
  uncertainty ->
  measurement
(** Defaults: 100 trials (the paper's N), seed 20240 + query id,
    [cpu_scale] 2000 (a modern core is roughly three orders of magnitude
    faster than a 25 MHz R3000). *)

val scaled_static_opt : measurement -> float
(** a, in reference-machine seconds. *)

val scaled_dynamic_opt : measurement -> float
(** e, in reference-machine seconds. *)

val scaled_runtime_opt : measurement -> float
(** mean per-invocation run-time optimization cost, reference-machine
    seconds. *)

val scaled_startup_cpu : measurement -> float
(** mean choose-plan decision CPU, reference-machine seconds. *)

val mean : float list -> float

val default_queries : unit -> Dqep_workload.Queries.t list
