type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ~rows ?(notes = []) () =
  { id; title; header; rows; notes }

let render ppf t =
  let all = t.header :: t.rows in
  let columns = List.length t.header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> Int.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        Format.fprintf ppf "%s%s" cell (String.make (w - String.length cell + 2) ' '))
      row;
    Format.pp_print_newline ppf ()
  in
  Format.fprintf ppf "== %s: %s ==@." t.id t.title;
  print_row t.header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row t.rows;
  List.iter (fun n -> Format.fprintf ppf "note: %s@." n) t.notes;
  Format.pp_print_newline ppf ()

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  String.concat "\n"
    (List.map
       (fun row -> String.concat "," (List.map csv_escape row))
       (t.header :: t.rows))
  ^ "\n"

let f2 v = Printf.sprintf "%.2f" v
let f4 v = Printf.sprintf "%.4f" v
let g3 v = Printf.sprintf "%.3g" v
