(* Multi-domain chaos/soak harness for resource-governed sessions.

   Worker domains pull seeded query jobs from a shared counter and
   submit them through ONE shared Session — admission slots, the
   bounded wait queue and the global memory pool are all contended for
   real.  Each job gets its OWN Database (the storage layer is not
   thread-safe across concurrent executions; the session governs
   admission and memory, not storage), a Plangen instance, a dynamic
   plan, and a scenario drawn from the seeded mix:

   - clean: no limits;
   - deadline: a few milliseconds of wall-clock budget;
   - cancel: deterministic cancellation at a seeded check tick;
   - memory: a tight per-query memory budget (plus the shared pool);
   - faulty: an injected I/O fault schedule on the job's disk.

   Jobs alternate row/batch engines, and every fourth batch job runs
   wide on the persistent work-stealing morsel pool (at least 3 workers,
   or DQEP_WORKERS when larger), so cancellation also lands mid-morsel
   on pool domains — with several submitter domains contending for the
   one process-wide pool at once.

   The harness asserts the governed-session contract structurally: every
   job yields exactly one typed outcome (anything escaping
   Session.submit is recorded in [escaped], which must stay empty), and
   after every outcome — completed, failed, shed, cancelled mid-spill —
   the job's buffer pool holds zero pinned pages ([leaks] must stay
   empty).  Hang-freedom is enforced by the caller's watchdog. *)

module Governor = Dqep_exec.Governor
module Session = Dqep_exec.Session
module Resilience = Dqep_exec.Resilience
module Exec_common = Dqep_exec.Exec_common
module Executor = Dqep_exec.Executor
module Plangen = Dqep_workload.Plangen
module Optimizer = Dqep_optimizer.Optimizer
module Reoptimize = Dqep_optimizer.Reoptimize
module Database = Dqep_storage.Database
module Buffer_pool = Dqep_storage.Buffer_pool
module Disk = Dqep_storage.Disk
module Fault = Dqep_storage.Fault

type scenario = Clean | Deadline | Cancel | Memory | Faulty | Busted | Faulty_resume

let scenario_name = function
  | Clean -> "clean"
  | Deadline -> "deadline"
  | Cancel -> "cancel"
  | Memory -> "memory"
  | Faulty -> "faulty"
  | Busted -> "busted"
  | Faulty_resume -> "faulty-resume"

let scenarios =
  [| Clean; Deadline; Cancel; Memory; Faulty; Busted; Faulty_resume |]

type tally = {
  total : int;
  completed : int;
  deadline_exceeded : int;
  memory_exceeded : int;
  cancelled : int;
  shed : int;
  exhausted : int;
  other_failures : int;  (** Infeasible/Rejected — expected to stay 0 *)
  failovers : int;
  memory_aborts_recovered : int;
      (** jobs that hit a memory abort yet still completed (failover
          onto a lower-memory alternative) *)
  estimate_busted : int;
      (** jobs whose final outcome was the typed busted-estimate fault *)
  replans : int;  (** incremental re-optimizations across completed jobs *)
  replans_recovered : int;
      (** busted-scenario jobs that completed after at least one replan *)
  leaks : string list;  (** pin-leak reports; the contract demands [] *)
  checkpoint_leaks : string list;
      (** checkpoint bytes still charged after an outcome; must be [] *)
  escaped : string list;  (** exceptions escaping submit; must be [] *)
  session : Session.stats;
}

let pp_tally ppf t =
  Format.fprintf ppf
    "@[<v>%d jobs: %d completed (%d via memory failover, %d via replan), %d \
     deadline, %d memory, %d cancelled, %d shed, %d exhausted, %d estimate \
     busted, %d other; %d failovers; %d replans; %d leaks; %d checkpoint \
     leaks; %d escaped@]"
    t.total t.completed t.memory_aborts_recovered t.replans_recovered
    t.deadline_exceeded t.memory_exceeded t.cancelled t.shed t.exhausted
    t.estimate_busted t.other_failures t.failovers t.replans
    (List.length t.leaks)
    (List.length t.checkpoint_leaks)
    (List.length t.escaped)

(* One job, executed on whatever domain claimed it.  Deterministic in
   (seed, job): the instance, bindings, scenario, engine and fault
   schedule all derive from them. *)
let run_job ~session ~seed ~deadline_s ~ckpt_pool job =
  let inst = Plangen.generate ~seed:(1 + ((seed * 131) + job) mod 97) in
  let scenario = scenarios.(job mod Array.length scenarios) in
  let db =
    match scenario with
    | Busted ->
      (* Deliberately wrong priors: the data is skewed, the optimizer's
         and bindings' selectivities assume uniform, so blocking-point
         observations escape the validity band and the busted-estimate
         path must recover. *)
      Database.build ~skew:3.0 ~seed:((seed * 7919) + job) inst.Plangen.catalog
    | Clean | Deadline | Cancel | Memory | Faulty | Faulty_resume ->
      Database.build ~seed:((seed * 7919) + job) inst.Plangen.catalog
  in
  let mode = Optimizer.dynamic ~uncertain_memory:true () in
  let plan =
    match Optimizer.optimize ~mode inst.Plangen.catalog inst.Plangen.query with
    | Ok r -> r.Optimizer.plan
    | Error _ -> invalid_arg "Chaos: optimizer failed on a Plangen instance"
  in
  let bindings = Plangen.bindings inst ~seed:(seed + (job * 13)) in
  let gov =
    match scenario with
    | Clean | Faulty -> Governor.none
    | Busted | Faulty_resume ->
      (* Unbudgeted but accounted, and attached to the shared pool:
         checkpoint bytes that outlive the outcome show up both in
         [charged_bytes] (per job) and in [Governor.pool_in_use] (at the
         end of the soak). *)
      Governor.create ~pool:ckpt_pool ()
    | Deadline -> Governor.create ~deadline:deadline_s ()
    | Cancel -> Governor.create ~cancel_after_checks:(1 + (job * 37 mod 200)) ()
    | Memory ->
      (* Tight enough that large builds must spill and some still abort;
         wide enough that small jobs complete.  [job / 5] varies across
         memory-scenario jobs ([job mod 5] is what selected the
         scenario, so it is constant here). *)
      Governor.create ~memory_bytes:(2048 + (job / 5 mod 4 * 4096)) ()
  in
  (match scenario with
  | Faulty ->
    Disk.set_faults
      (Buffer_pool.disk (Database.pool db))
      (Some
         (Fault.create
            (Fault.config ~read_fault_rate:0.02 ~seed:(seed + job) ())))
  | Faulty_resume ->
    (* Transient faults land after hash builds and sorts have already
       checkpointed: the retry resumes from those blocking points. *)
    Disk.set_faults
      (Buffer_pool.disk (Database.pool db))
      (Some
         (Fault.create
            (Fault.config ~read_fault_rate:0.02 ~seed:(seed + job) ())))
  | Clean | Deadline | Cancel | Memory | Busted -> ());
  let engine =
    if job land 1 = 0 then Exec_common.Row else Exec_common.Batch
  in
  let workers =
    (* Every fourth batch job goes wide on the shared morsel pool, so
       cancellation and deadlines land on pool domains too; DQEP_WORKERS
       widens it further (CI soaks the pool at 8). *)
    match engine with
    | Exec_common.Batch when job mod 4 = 1 ->
      Int.max 3 (Exec_common.default_workers ())
    | _ -> 1
  in
  let resilience =
    match scenario with
    | Busted | Faulty_resume ->
      let replan =
        match
          Reoptimize.prepare ~mode inst.Plangen.catalog inst.Plangen.query
        with
        | Ok (rt, _) -> Some (Reoptimize.replanner rt)
        | Error _ -> None
      in
      Resilience.config ~engine ~workers ~backoff_seed:(seed + job)
        ~checkpoints:true
        ~checkpoint_tolerance:(if scenario = Busted then 1.5 else 4.0)
        ~max_replans:2 ?replan ()
    | Clean | Deadline | Cancel | Memory | Faulty ->
      Resilience.config ~engine ~workers ~backoff_seed:(seed + job) ()
  in
  let outcome =
    try Ok (Session.submit session ~gov ~resilience db bindings plan)
    with e -> Error (Printexc.to_string e)
  in
  let leak =
    match Buffer_pool.leak_check (Database.pool db) with
    | Ok () -> None
    | Error msg ->
      Some
        (Printf.sprintf "job %d (%s, %s): %s" job (scenario_name scenario)
           (Exec_common.engine_name engine) msg)
  in
  let ckpt_leak =
    match scenario with
    | (Busted | Faulty_resume) when Governor.charged_bytes gov <> 0 ->
      Some
        (Printf.sprintf "job %d (%s, %s): %d bytes still charged" job
           (scenario_name scenario)
           (Exec_common.engine_name engine)
           (Governor.charged_bytes gov))
    | _ -> None
  in
  (scenario, outcome, leak, ckpt_leak)

let empty_session_stats =
  { Session.submitted = 0; admitted = 0; completed = 0; failed = 0;
    shed_queue_full = 0; shed_queue_timeout = 0; peak_inflight = 0;
    peak_queued = 0 }

let run ?(workers = 4) ?(jobs = 32) ?(seed = 1) ?(max_inflight = 3)
    ?(max_queue = 64) ?(pool_bytes = 1 lsl 20) ?(deadline_s = 0.003) () =
  if workers < 1 then invalid_arg "Chaos.run: workers < 1";
  if jobs < 1 then invalid_arg "Chaos.run: jobs < 1";
  let session =
    Session.create
      ~config:
        (* precheck off: the whole point of the Memory scenario is to
           exercise the run-time kill path that static admission would
           otherwise intercept *)
        (Session.config ~max_inflight ~max_queue ~memory_pool_bytes:pool_bytes
           ~precheck:false ())
      ()
  in
  let ckpt_pool = Governor.pool ~capacity_bytes:(1 lsl 24) in
  let next = Atomic.make 0 in
  let mu = Mutex.create () in
  let results = ref [] in
  let record r =
    Mutex.lock mu;
    results := r :: !results;
    Mutex.unlock mu
  in
  let worker () =
    let rec loop () =
      let job = Atomic.fetch_and_add next 1 in
      if job < jobs then begin
        record (run_job ~session ~seed ~deadline_s ~ckpt_pool job);
        loop ()
      end
    in
    loop ()
  in
  let domains = List.init workers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let results = !results in
  let count p = List.length (List.filter p results) in
  let completed = function
    | _, Ok (Session.Completed _), _, _ -> true
    | _ -> false
  in
  { total = List.length results;
    completed = count completed;
    deadline_exceeded =
      count (function
        | _, Ok (Session.Failed (Resilience.Deadline_exceeded _)), _, _ -> true
        | _ -> false);
    memory_exceeded =
      count (function
        | _, Ok (Session.Failed (Resilience.Memory_exceeded _)), _, _ -> true
        | _ -> false);
    cancelled =
      count (function
        | _, Ok (Session.Failed (Resilience.Cancelled _)), _, _ -> true
        | _ -> false);
    shed =
      count (function _, Ok (Session.Shed _), _, _ -> true | _ -> false);
    exhausted =
      count (function
        | _, Ok (Session.Failed (Resilience.Exhausted _)), _, _ -> true
        | _ -> false);
    other_failures =
      count (function
        | ( _,
            Ok
              (Session.Failed
                 (Resilience.Infeasible _ | Resilience.Rejected _)),
            _,
            _ ) ->
          true
        | _ -> false);
    failovers =
      List.fold_left
        (fun acc -> function
          | _, Ok (Session.Completed (_, stats)), _, _ ->
            acc + stats.Executor.failovers
          | _ -> acc)
        0 results;
    memory_aborts_recovered =
      count (function
        | Memory, Ok (Session.Completed (_, stats)), _, _ ->
          stats.Executor.failovers > 0
        | _ -> false);
    estimate_busted =
      count (function
        | _, Ok (Session.Failed (Resilience.Estimate_busted _)), _, _ -> true
        | _ -> false);
    replans =
      List.fold_left
        (fun acc -> function
          | _, Ok (Session.Completed (_, stats)), _, _ ->
            acc + stats.Executor.replans
          | _ -> acc)
        0 results;
    replans_recovered =
      count (function
        | Busted, Ok (Session.Completed (_, stats)), _, _ ->
          stats.Executor.replans > 0
        | _ -> false);
    leaks = List.filter_map (fun (_, _, leak, _) -> leak) results;
    checkpoint_leaks =
      (let per_job =
         List.filter_map (fun (_, _, _, ckpt_leak) -> ckpt_leak) results
       in
       (* The shared pool must drain to zero once every job has its
          outcome — no checkpoint byte may leak through it. *)
       if Governor.pool_in_use ckpt_pool <> 0 then
         Printf.sprintf "shared pool: %d bytes still in use"
           (Governor.pool_in_use ckpt_pool)
         :: per_job
       else per_job);
    escaped =
      List.filter_map
        (function _, Error msg, _, _ -> Some msg | _, Ok _, _, _ -> None)
        results;
    session = (try Session.stats session with _ -> empty_session_stats) }
