(* Multi-domain chaos/soak harness for resource-governed sessions.

   Worker domains pull seeded query jobs from a shared counter and
   submit them through ONE shared Session — admission slots, the
   bounded wait queue and the global memory pool are all contended for
   real.  Each job gets its OWN Database (the storage layer is not
   thread-safe across concurrent executions; the session governs
   admission and memory, not storage), a Plangen instance, a dynamic
   plan, and a scenario drawn from the seeded mix:

   - clean: no limits;
   - deadline: a few milliseconds of wall-clock budget;
   - cancel: deterministic cancellation at a seeded check tick;
   - memory: a tight per-query memory budget (plus the shared pool);
   - faulty: an injected I/O fault schedule on the job's disk.

   Jobs alternate row/batch engines, and every fourth batch job runs
   wide on the persistent work-stealing morsel pool (at least 3 workers,
   or DQEP_WORKERS when larger), so cancellation also lands mid-morsel
   on pool domains — with several submitter domains contending for the
   one process-wide pool at once.

   The harness asserts the governed-session contract structurally: every
   job yields exactly one typed outcome (anything escaping
   Session.submit is recorded in [escaped], which must stay empty), and
   after every outcome — completed, failed, shed, cancelled mid-spill —
   the job's buffer pool holds zero pinned pages ([leaks] must stay
   empty).  Hang-freedom is enforced by the caller's watchdog. *)

module Governor = Dqep_exec.Governor
module Session = Dqep_exec.Session
module Resilience = Dqep_exec.Resilience
module Exec_common = Dqep_exec.Exec_common
module Executor = Dqep_exec.Executor
module Plangen = Dqep_workload.Plangen
module Optimizer = Dqep_optimizer.Optimizer
module Reoptimize = Dqep_optimizer.Reoptimize
module Database = Dqep_storage.Database
module Buffer_pool = Dqep_storage.Buffer_pool
module Disk = Dqep_storage.Disk
module Fault = Dqep_storage.Fault

type scenario = Clean | Deadline | Cancel | Memory | Faulty | Busted | Faulty_resume

let scenario_name = function
  | Clean -> "clean"
  | Deadline -> "deadline"
  | Cancel -> "cancel"
  | Memory -> "memory"
  | Faulty -> "faulty"
  | Busted -> "busted"
  | Faulty_resume -> "faulty-resume"

let scenarios =
  [| Clean; Deadline; Cancel; Memory; Faulty; Busted; Faulty_resume |]

type tally = {
  total : int;
  completed : int;
  deadline_exceeded : int;
  memory_exceeded : int;
  cancelled : int;
  shed_queue_full : int;
  shed_queue_timeout : int;
  exhausted : int;
  other_failures : int;  (** Infeasible/Rejected — expected to stay 0 *)
  failovers : int;
  memory_aborts_recovered : int;
      (** jobs that hit a memory abort yet still completed (failover
          onto a lower-memory alternative) *)
  estimate_busted : int;
      (** jobs whose final outcome was the typed busted-estimate fault *)
  replans : int;  (** incremental re-optimizations across completed jobs *)
  replans_recovered : int;
      (** busted-scenario jobs that completed after at least one replan *)
  leaks : string list;  (** pin-leak reports; the contract demands [] *)
  checkpoint_leaks : string list;
      (** checkpoint bytes still charged after an outcome; must be [] *)
  escaped : string list;  (** exceptions escaping submit; must be [] *)
  session : Session.stats;
}

let pp_tally ppf t =
  Format.fprintf ppf
    "@[<v>%d jobs: %d completed (%d via memory failover, %d via replan), %d \
     deadline, %d memory, %d cancelled, %d shed at the door, %d shed on \
     queue deadline, %d exhausted, %d estimate busted, %d other; %d \
     failovers; %d replans; %d leaks; %d checkpoint leaks; %d escaped@]"
    t.total t.completed t.memory_aborts_recovered t.replans_recovered
    t.deadline_exceeded t.memory_exceeded t.cancelled t.shed_queue_full
    t.shed_queue_timeout t.exhausted t.estimate_busted t.other_failures
    t.failovers t.replans
    (List.length t.leaks)
    (List.length t.checkpoint_leaks)
    (List.length t.escaped)

(* One job, executed on whatever domain claimed it.  Deterministic in
   (seed, job): the instance, bindings, scenario, engine and fault
   schedule all derive from them. *)
let run_job ~session ~seed ~deadline_s ~ckpt_pool job =
  let inst = Plangen.generate ~seed:(1 + ((seed * 131) + job) mod 97) in
  let scenario = scenarios.(job mod Array.length scenarios) in
  let db =
    match scenario with
    | Busted ->
      (* Deliberately wrong priors: the data is skewed, the optimizer's
         and bindings' selectivities assume uniform, so blocking-point
         observations escape the validity band and the busted-estimate
         path must recover. *)
      Database.build ~skew:3.0 ~seed:((seed * 7919) + job) inst.Plangen.catalog
    | Clean | Deadline | Cancel | Memory | Faulty | Faulty_resume ->
      Database.build ~seed:((seed * 7919) + job) inst.Plangen.catalog
  in
  let mode = Optimizer.dynamic ~uncertain_memory:true () in
  let plan =
    match Optimizer.optimize ~mode inst.Plangen.catalog inst.Plangen.query with
    | Ok r -> r.Optimizer.plan
    | Error _ -> invalid_arg "Chaos: optimizer failed on a Plangen instance"
  in
  let bindings = Plangen.bindings inst ~seed:(seed + (job * 13)) in
  let gov =
    match scenario with
    | Clean | Faulty -> Governor.none
    | Busted | Faulty_resume ->
      (* Unbudgeted but accounted, and attached to the shared pool:
         checkpoint bytes that outlive the outcome show up both in
         [charged_bytes] (per job) and in [Governor.pool_in_use] (at the
         end of the soak). *)
      Governor.create ~pool:ckpt_pool ()
    | Deadline -> Governor.create ~deadline:deadline_s ()
    | Cancel -> Governor.create ~cancel_after_checks:(1 + (job * 37 mod 200)) ()
    | Memory ->
      (* Tight enough that large builds must spill and some still abort;
         wide enough that small jobs complete.  [job / 5] varies across
         memory-scenario jobs ([job mod 5] is what selected the
         scenario, so it is constant here). *)
      Governor.create ~memory_bytes:(2048 + (job / 5 mod 4 * 4096)) ()
  in
  (match scenario with
  | Faulty ->
    Disk.set_faults
      (Buffer_pool.disk (Database.pool db))
      (Some
         (Fault.create
            (Fault.config ~read_fault_rate:0.02 ~seed:(seed + job) ())))
  | Faulty_resume ->
    (* Transient faults land after hash builds and sorts have already
       checkpointed: the retry resumes from those blocking points. *)
    Disk.set_faults
      (Buffer_pool.disk (Database.pool db))
      (Some
         (Fault.create
            (Fault.config ~read_fault_rate:0.02 ~seed:(seed + job) ())))
  | Clean | Deadline | Cancel | Memory | Busted -> ());
  let engine =
    if job land 1 = 0 then Exec_common.Row else Exec_common.Batch
  in
  let workers =
    (* Every fourth batch job goes wide on the shared morsel pool, so
       cancellation and deadlines land on pool domains too; DQEP_WORKERS
       widens it further (CI soaks the pool at 8). *)
    match engine with
    | Exec_common.Batch when job mod 4 = 1 ->
      Int.max 3 (Exec_common.default_workers ())
    | _ -> 1
  in
  let resilience =
    match scenario with
    | Busted | Faulty_resume ->
      let replan =
        match
          Reoptimize.prepare ~mode inst.Plangen.catalog inst.Plangen.query
        with
        | Ok (rt, _) -> Some (Reoptimize.replanner rt)
        | Error _ -> None
      in
      Resilience.config ~engine ~workers ~backoff_seed:(seed + job)
        ~checkpoints:true
        ~checkpoint_tolerance:(if scenario = Busted then 1.5 else 4.0)
        ~max_replans:2 ?replan ()
    | Clean | Deadline | Cancel | Memory | Faulty ->
      Resilience.config ~engine ~workers ~backoff_seed:(seed + job) ()
  in
  let outcome =
    try Ok (Session.submit session ~gov ~resilience db bindings plan)
    with e -> Error (Printexc.to_string e)
  in
  let leak =
    match Buffer_pool.leak_check (Database.pool db) with
    | Ok () -> None
    | Error msg ->
      Some
        (Printf.sprintf "job %d (%s, %s): %s" job (scenario_name scenario)
           (Exec_common.engine_name engine) msg)
  in
  let ckpt_leak =
    match scenario with
    | (Busted | Faulty_resume) when Governor.charged_bytes gov <> 0 ->
      Some
        (Printf.sprintf "job %d (%s, %s): %d bytes still charged" job
           (scenario_name scenario)
           (Exec_common.engine_name engine)
           (Governor.charged_bytes gov))
    | _ -> None
  in
  (scenario, outcome, leak, ckpt_leak)

let empty_session_stats =
  { Session.submitted = 0; admitted = 0; completed = 0; failed = 0;
    shed_queue_full = 0; shed_queue_timeout = 0; peak_inflight = 0;
    peak_queued = 0 }

let run ?(workers = 4) ?(jobs = 32) ?(seed = 1) ?(max_inflight = 3)
    ?(max_queue = 64) ?(pool_bytes = 1 lsl 20) ?(deadline_s = 0.003) () =
  if workers < 1 then invalid_arg "Chaos.run: workers < 1";
  if jobs < 1 then invalid_arg "Chaos.run: jobs < 1";
  let session =
    Session.create
      ~config:
        (* precheck off: the whole point of the Memory scenario is to
           exercise the run-time kill path that static admission would
           otherwise intercept *)
        (Session.config ~max_inflight ~max_queue ~memory_pool_bytes:pool_bytes
           ~precheck:false ())
      ()
  in
  let ckpt_pool = Governor.pool ~capacity_bytes:(1 lsl 24) in
  let next = Atomic.make 0 in
  let mu = Mutex.create () in
  let results = ref [] in
  let record r =
    Mutex.lock mu;
    results := r :: !results;
    Mutex.unlock mu
  in
  let worker () =
    let rec loop () =
      let job = Atomic.fetch_and_add next 1 in
      if job < jobs then begin
        record (run_job ~session ~seed ~deadline_s ~ckpt_pool job);
        loop ()
      end
    in
    loop ()
  in
  let domains = List.init workers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let results = !results in
  let count p = List.length (List.filter p results) in
  let completed = function
    | _, Ok (Session.Completed _), _, _ -> true
    | _ -> false
  in
  { total = List.length results;
    completed = count completed;
    deadline_exceeded =
      count (function
        | _, Ok (Session.Failed (Resilience.Deadline_exceeded _)), _, _ -> true
        | _ -> false);
    memory_exceeded =
      count (function
        | _, Ok (Session.Failed (Resilience.Memory_exceeded _)), _, _ -> true
        | _ -> false);
    cancelled =
      count (function
        | _, Ok (Session.Failed (Resilience.Cancelled _)), _, _ -> true
        | _ -> false);
    shed_queue_full =
      count (function
        | _, Ok (Session.Shed Session.Queue_full), _, _ -> true
        | _ -> false);
    shed_queue_timeout =
      count (function
        | _, Ok (Session.Shed Session.Queue_timeout), _, _ -> true
        | _ -> false);
    exhausted =
      count (function
        | _, Ok (Session.Failed (Resilience.Exhausted _)), _, _ -> true
        | _ -> false);
    other_failures =
      count (function
        | ( _,
            Ok
              (Session.Failed
                 (Resilience.Infeasible _ | Resilience.Rejected _)),
            _,
            _ ) ->
          true
        | _ -> false);
    failovers =
      List.fold_left
        (fun acc -> function
          | _, Ok (Session.Completed (_, stats)), _, _ ->
            acc + stats.Executor.failovers
          | _ -> acc)
        0 results;
    memory_aborts_recovered =
      count (function
        | Memory, Ok (Session.Completed (_, stats)), _, _ ->
          stats.Executor.failovers > 0
        | _ -> false);
    estimate_busted =
      count (function
        | _, Ok (Session.Failed (Resilience.Estimate_busted _)), _, _ -> true
        | _ -> false);
    replans =
      List.fold_left
        (fun acc -> function
          | _, Ok (Session.Completed (_, stats)), _, _ ->
            acc + stats.Executor.replans
          | _ -> acc)
        0 results;
    replans_recovered =
      count (function
        | Busted, Ok (Session.Completed (_, stats)), _, _ ->
          stats.Executor.replans > 0
        | _ -> false);
    leaks = List.filter_map (fun (_, _, leak, _) -> leak) results;
    checkpoint_leaks =
      (let per_job =
         List.filter_map (fun (_, _, _, ckpt_leak) -> ckpt_leak) results
       in
       (* The shared pool must drain to zero once every job has its
          outcome — no checkpoint byte may leak through it. *)
       if Governor.pool_in_use ckpt_pool <> 0 then
         Printf.sprintf "shared pool: %d bytes still in use"
           (Governor.pool_in_use ckpt_pool)
         :: per_job
       else per_job);
    escaped =
      List.filter_map
        (function _, Error msg, _, _ -> Some msg | _, Ok _, _, _ -> None)
        results;
    session = (try Session.stats session with _ -> empty_session_stats) }

(* --- the serving-layer fault storm ---------------------------------------- *)

module Server = Dqep_serve.Server
module Protocol = Dqep_serve.Protocol
module Plan_cache = Dqep_serve.Plan_cache
module Breaker = Dqep_serve.Breaker
module Paper_catalog = Dqep_workload.Paper_catalog
module Sql = Dqep_sql.Sql
module Rng = Dqep_util.Rng

type serve_tally = {
  requests : int;
  ok : int;
  cache_hits_served : int;  (** OK responses answered from the plan cache *)
  failed_typed : int;  (** ERR with a typed in-flight failure class *)
  client_errors : int;  (** ERR with a request-side class; expected 0 *)
  shed_queue_full : int;
  shed_queue_timeout : int;
  shed_breaker_open : int;
  poisoned_trips : int;  (** breaker trips of the poisoned shape *)
  poisoned_ok : int;  (** poisoned-shape requests that completed anyway *)
  healthy_ok : int;  (** completions across the healthy shapes *)
  untyped : string list;  (** unparseable/blank responses; must be [] *)
  internal_errors : string list;  (** class=internal details; must be [] *)
  leaks : string list;  (** buffer-pool pin leaks across every db; must be [] *)
  pool_leak_bytes : int;  (** session memory pool bytes after drain; must be 0 *)
  server : Server.stats;
}

let pp_serve_tally ppf t =
  Format.fprintf ppf
    "@[<v>%d requests: %d ok (%d cache-hit, %d poisoned-shape, %d healthy), \
     %d typed failures, %d client errors, %d/%d/%d shed \
     (door/queue-deadline/breaker); %d poisoned-shape trips; %d untyped; %d \
     internal; %d leaks; %d pool bytes@]"
    t.requests t.ok t.cache_hits_served t.poisoned_ok t.healthy_ok
    t.failed_typed t.client_errors t.shed_queue_full t.shed_queue_timeout
    t.shed_breaker_open t.poisoned_trips
    (List.length t.untyped)
    (List.length t.internal_errors)
    (List.length t.leaks) t.pool_leak_bytes

let failure_classes =
  [ "infeasible"; "rejected"; "exhausted"; "deadline_exceeded";
    "memory_exceeded"; "cancelled"; "estimate_busted" ]

(* The serve workload's shapes: chain queries over the paper catalog,
   one per join length, each selecting on its first relation.  Shape 0
   is the poisoned one — its databases run on dead storage. *)
let serve_shape ~relations i =
  let len = 1 + (i mod relations) in
  let tables = List.init len (fun j -> Paper_catalog.rel_name (j + 1)) in
  let selections =
    [ (Paper_catalog.rel_name 1, Paper_catalog.select_attr, Sql.Host "u") ]
  in
  let joins =
    List.init (len - 1) (fun j ->
        ( (Paper_catalog.rel_name (j + 1), Paper_catalog.join_right_attr),
          (Paper_catalog.rel_name (j + 2), Paper_catalog.join_left_attr) ))
  in
  Sql.render { Sql.tables; selections; joins }

let serve_soak ?(clients = 4) ?(requests = 256) ?(seed = 1)
    ?(max_inflight = 3) ?(max_queue = 4) ?(relations = 3) () =
  if clients < 1 then invalid_arg "Chaos.serve_soak: clients < 1";
  if requests < 1 then invalid_arg "Chaos.serve_soak: requests < 1";
  if relations < 1 then invalid_arg "Chaos.serve_soak: relations < 1";
  let catalog = Paper_catalog.make ~relations in
  let shapes = Array.init relations (fun i -> serve_shape ~relations i) in
  let keys =
    Array.map
      (fun sql ->
        match Sql.parse sql with
        | Ok ast -> Plan_cache.key ast
        | Error e -> invalid_arg ("Chaos.serve_soak: bad shape SQL: " ^ e))
      shapes
  in
  let poisoned_key = keys.(0) in
  (* Track every database either pool ever builds, for the pin-leak
     sweep at the end. *)
  let all_dbs = ref [] in
  let dbs_mu = Mutex.create () in
  let track db =
    Mutex.lock dbs_mu;
    all_dbs := db :: !all_dbs;
    Mutex.unlock dbs_mu;
    db
  in
  let build_healthy () = track (Database.build ~seed catalog) in
  let build_poisoned () =
    let db = track (Database.build ~seed:(seed + 1) catalog) in
    (* Dead storage: every physical I/O faults permanently, so each
       attempt fails over immediately and the request exhausts its
       alternatives — the failure class the breaker counts. *)
    Disk.set_faults
      (Buffer_pool.disk (Database.pool db))
      (Some
         (Fault.create
            (Fault.config ~fail_after:(0, Fault.Permanent) ~seed ())));
    db
  in
  let healthy_acquire, healthy_release =
    Server.db_pool ~build:build_healthy ~slots:(max_inflight + clients) ()
  in
  let poisoned_acquire, poisoned_release =
    Server.db_pool ~build:build_poisoned ~slots:(max_inflight + clients) ()
  in
  let acquire ~shape =
    if shape = poisoned_key then poisoned_acquire ~shape
    else healthy_acquire ~shape
  in
  let release ~shape db =
    if shape = poisoned_key then poisoned_release ~shape db
    else healthy_release ~shape db
  in
  let config =
    Server.config
      ~session:
        (Session.config ~max_inflight ~max_queue ~queue_deadline:0.25
           ~memory_pool_bytes:(1 lsl 20) ~precheck:false ())
      ~breaker:(Breaker.config ~failure_threshold:3 ~cooldown:30. ())
      ~resilience:
        (Resilience.config ~backoff_seed:seed ~checkpoints:true
           ~max_retries:1 ~max_failovers:2 ())
      ()
  in
  let server = Server.create ~config ~acquire ~release catalog in
  let rng = Rng.create (seed * 65537) in
  let lines =
    Array.init requests (fun i ->
        let shape = i mod relations in
        let u = 0.05 +. Rng.uniform rng 0. 0.9 in
        (* Every 7th request carries a millisecond-scale deadline, so
           deadline shedding and queue-deadline interplay are part of
           the storm, not a separate scenario. *)
        let deadline_ms = if i mod 7 = 3 then Some 0.4 else None in
        Protocol.render_request
          (Protocol.Run
             { Protocol.id = Some i; bindings = [ ("u", u) ];
               memory_pages = Some (16 + (i mod 4 * 16)); deadline_ms;
               retries = Some 1; risk = None; sql = shapes.(shape) }))
  in
  let responses = Server.run_batch server ~clients lines in
  let parsed =
    Array.map
      (fun line ->
        match Protocol.parse_response line with
        | Ok r -> Ok r
        | Error e -> Error (Printf.sprintf "%s: %s" e line))
      responses
  in
  let count p =
    Array.fold_left
      (fun acc r -> if p r then acc + 1 else acc)
      0 parsed
  in
  let shape_of i = i mod relations in
  let ok_for poisoned =
    let n = ref 0 in
    Array.iteri
      (fun i r ->
        match r with
        | Ok (Protocol.Ok_reply _) when poisoned = (shape_of i = 0) -> incr n
        | _ -> ())
      parsed;
    !n
  in
  let leaks =
    Mutex.lock dbs_mu;
    let dbs = !all_dbs in
    Mutex.unlock dbs_mu;
    List.filter_map
      (fun db ->
        match Buffer_pool.leak_check (Database.pool db) with
        | Ok () -> None
        | Error msg -> Some msg)
      dbs
  in
  let pool_leak_bytes =
    match Session.memory_pool (Server.session server) with
    | Some pool -> Governor.pool_in_use pool
    | None -> 0
  in
  let stats = Server.stats server in
  { requests = Array.length responses;
    ok = count (function Ok (Protocol.Ok_reply _) -> true | _ -> false);
    cache_hits_served =
      count (function
        | Ok (Protocol.Ok_reply { cache = Protocol.Hit; _ }) -> true
        | _ -> false);
    failed_typed =
      count (function
        | Ok (Protocol.Error_reply { class_; _ }) ->
          List.mem class_ failure_classes
        | _ -> false);
    client_errors =
      count (function
        | Ok (Protocol.Error_reply { class_; _ }) ->
          not (List.mem class_ failure_classes) && class_ <> "internal"
        | _ -> false);
    shed_queue_full =
      count (function
        | Ok (Protocol.Shed_reply { reason = "queue_full"; _ }) -> true
        | _ -> false);
    shed_queue_timeout =
      count (function
        | Ok (Protocol.Shed_reply { reason = "queue_timeout"; _ }) -> true
        | _ -> false);
    shed_breaker_open =
      count (function
        | Ok (Protocol.Shed_reply { reason = "breaker_open"; _ }) -> true
        | _ -> false);
    poisoned_trips =
      (match Server.breaker server ~shape:poisoned_key with
      | None -> 0
      | Some b -> Breaker.trips b);
    poisoned_ok = ok_for true;
    healthy_ok = ok_for false;
    untyped =
      Array.to_list parsed
      |> List.filter_map (function Error e -> Some e | Ok _ -> None);
    internal_errors =
      Array.to_list parsed
      |> List.filter_map (function
           | Ok (Protocol.Error_reply { class_ = "internal"; detail; _ }) ->
             Some detail
           | _ -> None);
    leaks; pool_leak_bytes; server = stats }
