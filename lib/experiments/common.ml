module Timer = Dqep_util.Timer
module Stats = Dqep_util.Stats
module Optimizer = Dqep_optimizer.Optimizer
module Plan = Dqep_plans.Plan
module Startup = Dqep_plans.Startup
module Access_module = Dqep_plans.Access_module
module Env = Dqep_cost.Env
module Device = Dqep_cost.Device
module Queries = Dqep_workload.Queries
module Paramgen = Dqep_workload.Paramgen

type uncertainty = Sel_only | Sel_and_memory

let uncertainty_label = function
  | Sel_only -> "selectivities"
  | Sel_and_memory -> "selectivities+memory"

type measurement = {
  query : Queries.t;
  uncertainty : uncertainty;
  uncertain_vars : int;
  trials : int;
  cpu_scale : float;
  static_opt_time : float;
  dynamic_opt_time : float;
  static_stats : Optimizer.stats;
  dynamic_stats : Optimizer.stats;
  static_plan : Plan.t;
  dynamic_plan : Plan.t;
  static_nodes : int;
  dynamic_nodes : int;
  static_activation : float;
  dynamic_activation_io : float;
  startup_cpu_mean : float;
  dynamic_activation : float;
  static_exec : float list;
  dynamic_exec : float list;
  runtime_exec : float list;
  runtime_opt_times : float list;
  choose_decisions : int;
}

let mean = Stats.mean

let optimize_exn ?options ~mode catalog query =
  match Optimizer.optimize ?options ~mode catalog query with
  | Ok r -> r
  | Error e -> invalid_arg ("Experiments: optimization failed: " ^ e)

let measure ?(trials = 100) ?seed ?(cpu_scale = 2000.) ?options (q : Queries.t)
    uncertainty =
  let seed = Option.value seed ~default:(20240 + q.Queries.id) in
  let uncertain_memory =
    match uncertainty with Sel_only -> false | Sel_and_memory -> true
  in
  let device =
    (Option.value options ~default:Optimizer.default_options).Optimizer.device
  in
  let static_mode = Optimizer.static in
  let dynamic_mode = Optimizer.dynamic ~uncertain_memory () in
  (* Optimization times: re-run enough times to defeat clock granularity;
     a fresh memo is built on every run, like the real compile path. *)
  let static_res, static_opt_time =
    Timer.cpu_auto (fun () ->
        optimize_exn ?options ~mode:static_mode q.Queries.catalog q.Queries.query)
  in
  let dynamic_res, dynamic_opt_time =
    Timer.cpu_auto (fun () ->
        optimize_exn ?options ~mode:dynamic_mode q.Queries.catalog q.Queries.query)
  in
  let bindings =
    Paramgen.bindings ~seed ~trials ~host_vars:q.Queries.host_vars
      ~uncertain_memory ()
  in
  let static_exec = ref [] in
  let dynamic_exec = ref [] in
  let runtime_exec = ref [] in
  let runtime_opt_times = ref [] in
  let startup_cpus = ref [] in
  let choose_decisions = ref 0 in
  List.iter
    (fun b ->
      let env = Env.of_bindings ~device q.Queries.catalog b in
      let c, _ = Startup.evaluate env static_res.Optimizer.plan in
      static_exec := c :: !static_exec;
      (* Dynamic start-up: measure the decision procedure. *)
      let resolution, startup_cpu =
        Timer.cpu_auto ~min_seconds:0.005 (fun () ->
            Startup.resolve env dynamic_res.Optimizer.plan)
      in
      startup_cpus := startup_cpu :: !startup_cpus;
      choose_decisions := resolution.Startup.stats.Startup.choose_decisions;
      dynamic_exec := resolution.Startup.anticipated_cost :: !dynamic_exec;
      (* Run-time optimization: full optimization per invocation. *)
      let rt, rt_time =
        Timer.cpu_auto ~min_seconds:0.005 (fun () ->
            optimize_exn ?options ~mode:(Optimizer.Run_time b) q.Queries.catalog
              q.Queries.query)
      in
      runtime_opt_times := rt_time :: !runtime_opt_times;
      let d, _ = Startup.evaluate env rt.Optimizer.plan in
      runtime_exec := d :: !runtime_exec)
    bindings;
  let static_nodes = Plan.node_count static_res.Optimizer.plan in
  let dynamic_nodes = Plan.node_count dynamic_res.Optimizer.plan in
  let base = device.Device.activation_base in
  let static_activation =
    base +. Device.plan_io_time device ~nodes:static_nodes
  in
  let dynamic_activation_io = Device.plan_io_time device ~nodes:dynamic_nodes in
  let startup_cpu_mean = mean !startup_cpus in
  { query = q;
    uncertainty;
    uncertain_vars = Queries.uncertain_variables q ~uncertain_memory;
    trials;
    cpu_scale;
    static_opt_time;
    dynamic_opt_time;
    static_stats = static_res.Optimizer.stats;
    dynamic_stats = dynamic_res.Optimizer.stats;
    static_plan = static_res.Optimizer.plan;
    dynamic_plan = dynamic_res.Optimizer.plan;
    static_nodes;
    dynamic_nodes;
    static_activation;
    dynamic_activation_io;
    startup_cpu_mean;
    dynamic_activation =
      base +. dynamic_activation_io +. (startup_cpu_mean *. cpu_scale);
    static_exec = List.rev !static_exec;
    dynamic_exec = List.rev !dynamic_exec;
    runtime_exec = List.rev !runtime_exec;
    runtime_opt_times = List.rev !runtime_opt_times;
    choose_decisions = !choose_decisions }

let scaled_static_opt m = m.static_opt_time *. m.cpu_scale
let scaled_dynamic_opt m = m.dynamic_opt_time *. m.cpu_scale
let scaled_runtime_opt m = mean m.runtime_opt_times *. m.cpu_scale
let scaled_startup_cpu m = m.startup_cpu_mean *. m.cpu_scale

let default_queries () = Queries.paper_queries ()
