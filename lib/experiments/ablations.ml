module R = Report
module Optimizer = Dqep_optimizer.Optimizer
module Plan = Dqep_plans.Plan
module Startup = Dqep_plans.Startup
module Adapt = Dqep_plans.Adapt
module Access_module = Dqep_plans.Access_module
module Env = Dqep_cost.Env
module Queries = Dqep_workload.Queries
module Paramgen = Dqep_workload.Paramgen
module Timer = Dqep_util.Timer
module Stats = Dqep_util.Stats

let optimize_exn ?options ~mode (q : Queries.t) =
  match Optimizer.optimize ?options ~mode q.Queries.catalog q.Queries.query with
  | Ok r -> r
  | Error e -> invalid_arg ("Ablations: optimization failed: " ^ e)

let resolve_cost catalog plan b =
  let env = Env.of_bindings catalog b in
  (Startup.resolve env plan).Startup.anticipated_cost

let shrink ?(relations = 4) ?(train = 100) ?(test = 100) ?(seed = 77) () =
  let q = Queries.chain ~relations in
  let catalog = q.Queries.catalog in
  let dyn = optimize_exn ~mode:(Optimizer.dynamic ~uncertain_memory:true ()) q in
  let adapt = Adapt.create dyn.Optimizer.plan in
  let train_bindings =
    Paramgen.bindings ~seed ~trials:train ~host_vars:q.Queries.host_vars
      ~uncertain_memory:true ()
  in
  List.iter
    (fun b ->
      let env = Env.of_bindings catalog b in
      Adapt.record adapt (Startup.resolve env dyn.Optimizer.plan))
    train_bindings;
  let shrunk = Adapt.shrink (Env.dynamic catalog) adapt in
  let test_bindings =
    Paramgen.bindings ~seed:(seed + 1) ~trials:test ~host_vars:q.Queries.host_vars
      ~uncertain_memory:true ()
  in
  let regrets =
    List.map
      (fun b ->
        resolve_cost catalog shrunk b -. resolve_cost catalog dyn.Optimizer.plan b)
      test_bindings
  in
  let regressed = List.length (List.filter (fun r -> r > 1e-9) regrets) in
  let startup_cpu plan =
    let b = List.hd test_bindings in
    let env = Env.of_bindings catalog b in
    snd (Timer.cpu_auto (fun () -> Startup.resolve env plan))
  in
  R.make ~id:"shrink"
    ~title:
      (Printf.sprintf
         "Plan shrinking heuristic (Section 4), %d-way join, %d training runs"
         relations train)
    ~header:[ "metric"; "full dynamic plan"; "shrunk plan" ]
    ~rows:
      [ [ "plan nodes";
          string_of_int (Plan.node_count dyn.Optimizer.plan);
          string_of_int (Plan.node_count shrunk) ];
        [ "choose-plan operators";
          string_of_int (Plan.choose_count dyn.Optimizer.plan);
          string_of_int (Plan.choose_count shrunk) ];
        [ "start-up CPU [s]";
          R.f4 (startup_cpu dyn.Optimizer.plan);
          R.f4 (startup_cpu shrunk) ];
        [ Printf.sprintf "test invocations regressed (of %d)" test; "0";
          string_of_int regressed ];
        [ "mean regret [s]"; "0"; R.f4 (Stats.mean regrets) ];
        [ "max regret [s]"; "0";
          R.f4 (if regrets = [] then 0. else snd (Stats.min_max regrets)) ] ]
    ~notes:
      [ "shrinking drops never-chosen alternatives: cheaper start-up, but a \
         later binding may regret a dropped plan — exactly the trade-off \
         the paper describes" ]
    ()

let domination ?(relations = 4) ?(samples = [ 4; 16 ]) ?(trials = 100) ?(seed = 99) () =
  let q = Queries.chain ~relations in
  let catalog = q.Queries.catalog in
  let bindings =
    Paramgen.bindings ~seed ~trials ~host_vars:q.Queries.host_vars
      ~uncertain_memory:true ()
  in
  let run sample_domination =
    let options = { Optimizer.default_options with Optimizer.sample_domination } in
    let res, time =
      Timer.cpu_auto (fun () ->
          optimize_exn ~options ~mode:(Optimizer.dynamic ~uncertain_memory:true ()) q)
    in
    (res, time)
  in
  let baseline, base_time = run None in
  let base_costs =
    List.map (resolve_cost catalog baseline.Optimizer.plan) bindings
  in
  let row label (res : Optimizer.result) time =
    let costs = List.map (resolve_cost catalog res.Optimizer.plan) bindings in
    let regrets = List.map2 (fun a b -> a -. b) costs base_costs in
    [ label;
      string_of_int (Plan.node_count res.Optimizer.plan);
      R.f4 time;
      R.f2 (Stats.mean costs);
      R.f4 (Stats.mean regrets);
      R.f4 (if regrets = [] then 0. else snd (Stats.min_max regrets)) ]
  in
  let rows =
    row "exact (no sampling)" baseline base_time
    :: List.map
         (fun k ->
           let res, time = run (Some k) in
           row (Printf.sprintf "%d samples" k) res time)
         samples
  in
  R.make ~id:"domination"
    ~title:
      (Printf.sprintf
         "Sampled cost-comparison heuristic (Section 3), %d-way join" relations)
    ~header:
      [ "comparison"; "plan nodes"; "opt time [s]"; "avg exec g [s]";
        "mean regret [s]"; "max regret [s]" ]
    ~rows
    ~notes:
      [ "sampling prunes plans that are never cheaper at any sampled \
         binding: smaller dynamic plans and faster optimization, at the \
         risk of dropping a plan optimal for an unsampled binding" ]
    ()

let pruning ?(relations = 6) () =
  let q = Queries.chain ~relations in
  let run mode prune =
    let options = { Optimizer.default_options with Optimizer.prune } in
    Timer.cpu_auto (fun () -> optimize_exn ~options ~mode q)
  in
  let row label mode =
    let on, on_time = run mode true in
    let off, off_time = run mode false in
    [ label;
      R.f4 on_time; string_of_int on.Optimizer.stats.Optimizer.candidates;
      string_of_int on.Optimizer.stats.Optimizer.pruned;
      R.f4 off_time; string_of_int off.Optimizer.stats.Optimizer.candidates ]
  in
  R.make ~id:"pruning"
    ~title:
      (Printf.sprintf "Branch-and-bound effectiveness, %d-way join" relations)
    ~header:
      [ "cost model"; "time (prune on) [s]"; "candidates"; "pruned";
        "time (prune off) [s]"; "candidates (off)" ]
    ~rows:
      [ row "points (static)" Optimizer.static;
        row "intervals (dynamic)" (Optimizer.dynamic ~uncertain_memory:true ()) ]
    ~notes:
      [ "with intervals only lower bounds can be subtracted from limits, so \
         pruning removes far fewer candidates — the paper's explanation for \
         the optimization-time growth of dynamic plans" ]
    ()

let sharing ms =
  let rows =
    List.map
      (fun (m : Common.measurement) ->
        let real = Access_module.encoded_bytes m.Common.dynamic_plan in
        let modelled =
          Access_module.modelled_bytes Dqep_cost.Device.default m.Common.dynamic_plan
        in
        [ Printf.sprintf "q%d" m.Common.query.Queries.id;
          Common.uncertainty_label m.Common.uncertainty;
          string_of_int m.Common.dynamic_nodes;
          R.g3 (Plan.expanded_count m.Common.dynamic_plan);
          R.g3
            (Plan.expanded_count m.Common.dynamic_plan
            /. float_of_int (Int.max 1 m.Common.dynamic_nodes));
          string_of_int modelled;
          string_of_int real ])
      ms
  in
  R.make ~id:"sharing" ~title:"DAG sharing vs tree expansion of dynamic plans"
    ~header:
      [ "query"; "uncertainty"; "DAG nodes"; "tree nodes"; "expansion factor";
        "modelled bytes"; "serialized bytes" ]
    ~rows
    ~notes:
      [ "without DAG sharing, dynamic plans would grow exponentially \
         (Section 3); serialized bytes are from the textual access-module \
         codec" ]
    ()

let exhaustive ?(relations = 4) ?(trials = 50) ?(seed = 55) () =
  let q = Queries.chain ~relations in
  let catalog = q.Queries.catalog in
  let bindings =
    Paramgen.bindings ~seed ~trials ~host_vars:q.Queries.host_vars
      ~uncertain_memory:true ()
  in
  let run label options =
    let res, time =
      Timer.cpu_auto (fun () ->
          optimize_exn ~options ~mode:(Optimizer.dynamic ~uncertain_memory:true ()) q)
    in
    let plan = res.Optimizer.plan in
    let startup =
      let b = List.hd bindings in
      let env = Dqep_cost.Env.of_bindings catalog b in
      snd (Timer.cpu_auto (fun () -> Startup.resolve env plan))
    in
    let costs = List.map (resolve_cost catalog plan) bindings in
    [ label;
      string_of_int (Plan.node_count plan);
      string_of_int (Plan.choose_count plan);
      R.f4 time;
      R.f4 startup;
      R.f2 (Stats.mean costs) ]
  in
  R.make ~id:"exhaustive"
    ~title:
      (Printf.sprintf
         "Exhaustive plans vs cost-driven dynamic plans, %d-way join" relations)
    ~header:
      [ "plan"; "nodes"; "choose ops"; "opt time [s]"; "start-up CPU [s]";
        "avg exec g [s]" ]
    ~rows:
      [ run "dynamic (incomparable only)" Optimizer.default_options;
        run "exhaustive (all incomparable)"
          { Optimizer.default_options with Optimizer.exhaustive = true } ]
    ~notes:
      [ "Section 3: the exhaustive plan includes absolutely all plans and \
         is optimal for every binding, but the cost-driven dynamic plan \
         achieves (near-)identical executions at a fraction of the size and \
         start-up effort — why the paper does not advocate exhaustive plans" ]
    ()

let midquery ?(relations = 2) ?(skew = 4.0) ?(trials = 40) ?(seed = 66) () =
  let q = Queries.chain ~relations in
  let catalog = q.Queries.catalog in
  let db = Dqep_storage.Database.build ~seed ~skew catalog in
  let dyn = optimize_exn ~mode:(Optimizer.dynamic ()) q in
  let bindings =
    Paramgen.bindings ~seed:(seed + 1) ~trials ~host_vars:q.Queries.host_vars
      ~uncertain_memory:false ()
  in
  let switched = ref 0 in
  let default_costs = ref [] in
  let adapted_costs = ref [] in
  List.iter
    (fun b ->
      let _, stats = Dqep_exec.Midquery.run db b dyn.Optimizer.plan in
      if stats.Dqep_exec.Midquery.switched then incr switched;
      default_costs := stats.Dqep_exec.Midquery.default_cost :: !default_costs;
      adapted_costs := stats.Dqep_exec.Midquery.adapted_cost :: !adapted_costs)
    bindings;
  R.make ~id:"midquery"
    ~title:
      (Printf.sprintf
         "Mid-query adaptation under skew %.1f (%d-way join, %d invocations)"
         skew relations trials)
    ~header:[ "metric"; "value" ]
    ~rows:
      [ [ "invocations"; string_of_int trials ];
        [ "plan switches after observation"; string_of_int !switched ];
        [ "avg cost, start-up decision only"; R.f2 (Stats.mean !default_costs) ];
        [ "avg cost, adapted decision"; R.f2 (Stats.mean !adapted_costs) ];
        [ "improvement";
          Printf.sprintf "%.1f%%"
            (100.
            *. (1. -. (Stats.mean !adapted_costs /. Stats.mean !default_costs))) ] ]
    ~notes:
      [ "skewed data violates the uniformity assumption, so selectivity \
         estimates are wrong even with bound host variables (the paper's \
         [IoC91] motivation); observing a shared subplan's true cardinality \
         corrects the choose-plan decision (Section 7's research direction)" ]
    ()

let bounds ?(relations = 4) ?(trials = 60) ?(seed = 88) () =
  let q = Queries.chain ~relations in
  let catalog = q.Queries.catalog in
  let interval_of center width =
    let lo = Float.max 0. (center -. (width /. 2.)) in
    Dqep_util.Interval.make lo (Float.min 1. (lo +. width))
  in
  let scenario label width =
    let selectivity_bounds =
      if width >= 1. then []
      else List.map (fun v -> (v, interval_of 0.3 width)) q.Queries.host_vars
    in
    let options = { Optimizer.default_options with Optimizer.selectivity_bounds } in
    let res, time =
      Timer.cpu_auto (fun () ->
          optimize_exn ~options ~mode:(Optimizer.dynamic ()) q)
    in
    (* Bindings drawn inside the declared bounds, so the declaration is
       honest. *)
    let bindings =
      Paramgen.bindings ~bounds:selectivity_bounds ~seed ~trials
        ~host_vars:q.Queries.host_vars ~uncertain_memory:false ()
    in
    let gs = List.map (resolve_cost catalog res.Optimizer.plan) bindings in
    let ds =
      List.map
        (fun b ->
          let env = Env.of_bindings catalog b in
          let rt = optimize_exn ~mode:(Optimizer.Run_time b) q in
          fst (Startup.evaluate env rt.Optimizer.plan))
        bindings
    in
    [ label;
      string_of_int (Plan.node_count res.Optimizer.plan);
      string_of_int (Plan.choose_count res.Optimizer.plan);
      R.f4 time;
      R.f2 (Stats.mean gs);
      R.f2 (Stats.mean ds) ]
  in
  R.make ~id:"bounds"
    ~title:
      (Printf.sprintf
         "Value of tighter uncertainty bounds, %d-way join (intervals centred \
          at 0.3)" relations)
    ~header:
      [ "selectivity interval width"; "plan nodes"; "choose ops"; "opt time [s]";
        "avg dynamic g [s]"; "avg run-time optimum d [s]" ]
    ~rows:
      [ scenario "1.00 (unknown: [0,1])" 1.0;
        scenario "0.50" 0.5;
        scenario "0.20" 0.2;
        scenario "0.05" 0.05 ]
    ~notes:
      [ "narrower declared intervals make more cost comparisons decidable \
         at compile time: smaller dynamic plans, same per-binding optimality \
         over the declared range (g tracks d throughout)" ]
    ()

let all ms =
  [ shrink (); domination (); pruning (); sharing ms; exhaustive (); midquery ();
    bounds () ]
