(** Ablations of the design choices the paper calls out but does not
    quantify.

    - {!shrink}: the Section 4 plan-shrinking heuristic — size and
      start-up savings vs the robustness it gives up.
    - {!domination}: the Section 3 sampled cost-comparison heuristic —
      smaller dynamic plans vs possible loss of optimality.
    - {!pruning}: branch-and-bound on/off in both cost models.
    - {!sharing}: DAG sharing vs tree expansion, and real vs modelled
      access-module sizes.
    - {!exhaustive}: Section 3's "exhaustive plan" (every comparison
      declared incomparable) against the cost-driven dynamic plan.
    - {!midquery}: Section 7's mid-query adaptation on skewed data
      (selectivity estimation errors).
    - {!bounds}: the value of tighter uncertainty modelling — narrower
      per-variable selectivity intervals (Section 3: the DBI "is free to
      choose an alternative selectivity and cost model") shrink dynamic
      plans while keeping them optimal over the narrower range. *)

val shrink :
  ?relations:int -> ?train:int -> ?test:int -> ?seed:int -> unit -> Report.t

val domination :
  ?relations:int -> ?samples:int list -> ?trials:int -> ?seed:int -> unit ->
  Report.t

val pruning : ?relations:int -> unit -> Report.t

val sharing : Common.measurement list -> Report.t

val exhaustive : ?relations:int -> ?trials:int -> ?seed:int -> unit -> Report.t

val midquery :
  ?relations:int -> ?skew:float -> ?trials:int -> ?seed:int -> unit -> Report.t

val bounds : ?relations:int -> ?trials:int -> ?seed:int -> unit -> Report.t

val all : Common.measurement list -> Report.t list
