(** One report generator per figure of the paper's evaluation (Section 6)
    plus the break-even analyses of the running text.

    Every generator consumes pre-computed {!Common.measurement}s so the
    expensive measurements run once and are shared across figures. *)

val fig3 : ?invocations:int list -> Common.measurement list -> Report.t
(** Figure 3's optimization-scenario model, instantiated with measured
    quantities: total effort of static plans ([a + N(b + c)]), run-time
    optimization ([N(a + d)]) and dynamic plans ([e + N(f + g)]) for a
    range of invocation counts [N] (default 1, 10, 100). *)

val fig4 : Common.measurement list -> Report.t
(** Average execution cost of static vs dynamic plans. *)

val fig5 : Common.measurement list -> Report.t
(** Optimization time of static vs dynamic plans (measured CPU). *)

val fig6 : Common.measurement list -> Report.t
(** Plan sizes in operator nodes (DAG), plus modelled access-module
    bytes and the tree-expanded node count sharing avoids. *)

val fig7 : Common.measurement list -> Report.t
(** Start-up CPU time of dynamic plans (measured), with decision counts
    and activation I/O. *)

val fig8 : Common.measurement list -> Report.t
(** Run-time optimization vs dynamic plans: per-invocation run-time
    effort [a + d] vs [f + g]. *)

val breakeven : Common.measurement list -> Report.t
(** Break-even invocation counts: dynamic vs static
    ([ceil ((e-a) / ((b+c) - (f+g)))]) and dynamic vs run-time
    optimization ([ceil (e / (a - f))]), per the paper's formulas. *)

val all : Common.measurement list -> Report.t list
