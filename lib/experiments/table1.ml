let report () =
  Report.make ~id:"table1" ~title:"Logical and physical algebra operators"
    ~header:
      [ "operator type"; "logical operator / physical property";
        "physical algorithm" ]
    ~rows:
      [ [ "data retrieval"; "Get-Set"; "File-Scan" ];
        [ ""; ""; "B-tree-Scan" ];
        [ "select, project"; "Select"; "Filter" ];
        [ ""; ""; "Filter-B-tree-Scan" ];
        [ "join"; "Join"; "Hash-Join" ];
        [ ""; ""; "Merge-Join" ];
        [ ""; ""; "Index-Join" ];
        [ "enforcer"; "sort order"; "Sort" ];
        [ ""; "plan robustness"; "Choose-Plan" ] ]
    ~notes:
      [ "matches the paper's Table 1; transformation rules are join \
         commutativity and associativity (all bushy trees)" ]
    ()
