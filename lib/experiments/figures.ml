module R = Report
open Common

let qlabel (m : measurement) = Printf.sprintf "q%d" m.query.Dqep_workload.Queries.id
let vars m = string_of_int m.uncertain_vars
let unc m = uncertainty_label m.uncertainty

let fig3 ?(invocations = [ 1; 10; 100 ]) ms =
  let rows =
    List.concat_map
      (fun (m : measurement) ->
        let a_static = Common.scaled_static_opt m in
        let b = m.static_activation in
        let c = mean m.static_exec in
        let a_rt = Common.scaled_runtime_opt m in
        let d = mean m.runtime_exec in
        let e = Common.scaled_dynamic_opt m in
        let f = m.dynamic_activation in
        let g = mean m.dynamic_exec in
        List.map
          (fun n ->
            let nf = float_of_int n in
            [ qlabel m; unc m; string_of_int n;
              R.f2 (a_static +. (nf *. (b +. c)));
              R.f2 (nf *. (a_rt +. d));
              R.f2 (e +. (nf *. (f +. g))) ])
          invocations)
      ms
  in
  R.make ~id:"fig3" ~title:"Total effort of the three optimization scenarios"
    ~header:
      [ "query"; "uncertainty"; "N"; "static a+N(b+c)"; "run-time N(a+d)";
        "dynamic e+N(f+g)" ]
    ~rows
    ~notes:
      [ "all quantities in reference-machine seconds (measured CPU times \
         scaled by cpu_scale); execution costs are the optimizer's \
         anticipated costs under the true bindings (paper footnote 4)" ]
    ()

let fig4 ms =
  let rows =
    List.map
      (fun (m : measurement) ->
        let c = mean m.static_exec and g = mean m.dynamic_exec in
        [ qlabel m; vars m; unc m; R.f2 c; R.f2 g; R.f2 (c /. g) ])
      ms
  in
  R.make ~id:"fig4" ~title:"Average execution cost: static vs dynamic plans"
    ~header:
      [ "query"; "uncertain vars"; "uncertainty"; "static avg c [s]";
        "dynamic avg g [s]"; "ratio c/g" ]
    ~rows
    ~notes:
      [ "paper shape: dynamic plans win by a growing factor as the number \
         of uncertain variables grows (factor 5 for query 1 up to 24 for \
         query 5 in the paper)" ]
    ()

let fig5 ms =
  let rows =
    List.map
      (fun (m : measurement) ->
        [ qlabel m; vars m; unc m;
          R.f4 m.static_opt_time; R.f4 m.dynamic_opt_time;
          R.f2 (m.dynamic_opt_time /. m.static_opt_time);
          string_of_int m.static_stats.Dqep_optimizer.Optimizer.pruned;
          string_of_int m.dynamic_stats.Dqep_optimizer.Optimizer.pruned ])
      ms
  in
  R.make ~id:"fig5" ~title:"Optimization time: static vs dynamic (measured CPU)"
    ~header:
      [ "query"; "uncertain vars"; "uncertainty"; "static a [s]"; "dynamic e [s]";
        "ratio e/a"; "pruned (static)"; "pruned (dynamic)" ]
    ~rows
    ~notes:
      [ "interval costs weaken branch-and-bound (only lower bounds can be \
         subtracted), visible in the pruning counters; the paper reports a \
         worst-case factor of about 3" ]
    ()

let fig6 ms =
  let rows =
    List.map
      (fun (m : measurement) ->
        [ qlabel m; vars m; unc m;
          string_of_int m.static_nodes; string_of_int m.dynamic_nodes;
          string_of_int
            (Dqep_plans.Plan.size_bytes Dqep_cost.Device.default m.dynamic_plan);
          R.g3 (Dqep_plans.Plan.expanded_count m.dynamic_plan) ])
      ms
  in
  R.make ~id:"fig6" ~title:"Plan sizes (operator nodes in the DAG)"
    ~header:
      [ "query"; "uncertain vars"; "uncertainty"; "static nodes"; "dynamic nodes";
        "dynamic bytes (128B/node)"; "if expanded to tree" ]
    ~rows
    ~notes:
      [ "paper: 21 vs 14,090 nodes for query 5; absolute counts depend on \
         the cost model, the shape (orders of magnitude growth, bounded by \
         DAG sharing) is the result";
        "memory uncertainty barely grows the dynamic plan, as in the paper" ]
    ()

let fig7 ms =
  let rows =
    List.map
      (fun (m : measurement) ->
        [ qlabel m; vars m; unc m;
          Printf.sprintf "%.2e" m.startup_cpu_mean;
          R.f4 (Common.scaled_startup_cpu m);
          R.f4 m.dynamic_activation_io;
          R.f4 m.dynamic_activation;
          string_of_int m.choose_decisions ])
      ms
  in
  R.make ~id:"fig7" ~title:"Start-up cost of dynamic plans"
    ~header:
      [ "query"; "uncertain vars"; "uncertainty"; "decision CPU (host) [s]";
        "decision CPU (scaled) [s]"; "module I/O [s]"; "activation f [s]";
        "choose decisions" ]
    ~rows
    ~notes:
      [ "decision CPU is measured on the host and also shown scaled to the \
         reference machine; module I/O is modelled from plan size at 2 MB/s \
         with 128-byte nodes, as in the paper" ]
    ()

let fig8 ms =
  let rows =
    List.map
      (fun (m : measurement) ->
        let rt = Common.scaled_runtime_opt m +. mean m.runtime_exec in
        let dyn = m.dynamic_activation +. mean m.dynamic_exec in
        [ qlabel m; vars m; unc m; R.f2 rt; R.f2 dyn; R.f2 (rt /. dyn) ])
      ms
  in
  R.make ~id:"fig8" ~title:"Run-time optimization vs dynamic plans (per invocation)"
    ~header:
      [ "query"; "uncertain vars"; "uncertainty"; "run-time a+d [s]";
        "dynamic f+g [s]"; "ratio" ]
    ~rows
    ~notes:
      [ "the paper reports a factor exceeding 2 for query 5: start-up \
         re-evaluation of cost functions is much cheaper than a full \
         optimization" ]
    ()

let breakeven ms =
  let rows =
    List.map
      (fun (m : measurement) ->
        let a = Common.scaled_static_opt m in
        let b = m.static_activation in
        let c = mean m.static_exec in
        let e = Common.scaled_dynamic_opt m in
        let f = m.dynamic_activation in
        let g = mean m.dynamic_exec in
        let a_rt = Common.scaled_runtime_opt m in
        let vs_static =
          let per_invocation_gain = b +. c -. (f +. g) in
          if per_invocation_gain <= 0. then "never"
          else string_of_int (Int.max 1 (int_of_float (ceil ((e -. a) /. per_invocation_gain))))
        in
        let vs_runtime =
          let per_invocation_gain = a_rt -. f in
          if per_invocation_gain <= 0. then "never"
          else string_of_int (Int.max 1 (int_of_float (ceil (e /. per_invocation_gain))))
        in
        [ qlabel m; vars m; unc m; vs_static; vs_runtime ])
      ms
  in
  R.make ~id:"breakeven" ~title:"Break-even invocation counts for dynamic plans"
    ~header:
      [ "query"; "uncertain vars"; "uncertainty"; "vs static plans";
        "vs run-time optimization" ]
    ~rows
    ~notes:
      [ "paper: break-even vs static was consistently 1; vs run-time \
         optimization between 2 and 4" ]
    ()

let all ms =
  [ fig3 ms; fig4 ms; fig5 ms; fig6 ms; fig7 ms; fig8 ms; breakeven ms ]
