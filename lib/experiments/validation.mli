(** Cost-model validation: Figure 4 re-run with real executions.

    The paper reports anticipated costs (its footnote 4).  This
    experiment executes the same static and dynamic plans on materialized
    synthetic data and counts {e actual} physical I/O through the buffer
    pool, checking that the cost model's verdict — dynamic plans beat
    static plans, and the resolved choice is right — survives contact
    with a real execution engine. *)

val report :
  ?relations_list:int list -> ?trials:int -> ?seed:int -> unit -> Report.t
(** Defaults: 1-, 2- and 3-way joins, 20 bindings each. *)
