(** Multi-domain chaos/soak harness for resource-governed sessions.

    Worker domains submit seeded query jobs — a mix of clean runs,
    wall-clock deadlines, deterministic cancellations, tight memory
    budgets and injected I/O faults, across both engines including
    parallel exchange — through one shared {!Dqep_exec.Session}.  The
    harness checks the governed-session contract: every job gets exactly
    one typed outcome ({!tally.escaped} empty), no outcome leaks a
    buffer-pool pin ({!tally.leaks} empty), and no checkpointed
    intermediate leaks memory-governor bytes ({!tally.checkpoint_leaks}
    empty) — the busted and faulty-resume scenarios run with
    checkpointed recovery enabled.  Hang-freedom is the caller's
    watchdog's job.

    Deterministic in [seed] up to domain scheduling: the job set is
    fixed, but which outcomes race to completion (shedding, pool
    pressure) varies with interleaving — the contract holds for all of
    them. *)

type scenario = Clean | Deadline | Cancel | Memory | Faulty | Busted | Faulty_resume

val scenario_name : scenario -> string

type tally = {
  total : int;
  completed : int;
  deadline_exceeded : int;
  memory_exceeded : int;
  cancelled : int;
  shed : int;
  exhausted : int;
  other_failures : int;  (** Infeasible/Rejected — expected to stay 0 *)
  failovers : int;  (** across completed jobs *)
  memory_aborts_recovered : int;
      (** memory-scenario jobs that completed via failover *)
  estimate_busted : int;
      (** jobs whose final outcome was the typed busted-estimate fault *)
  replans : int;  (** incremental re-optimizations across completed jobs *)
  replans_recovered : int;
      (** busted-scenario jobs that completed after at least one replan *)
  leaks : string list;  (** pin-leak reports; the contract demands [] *)
  checkpoint_leaks : string list;
      (** checkpoint bytes still charged after an outcome; must be [] *)
  escaped : string list;  (** exceptions escaping submit; must be [] *)
  session : Dqep_exec.Session.stats;
}

val pp_tally : Format.formatter -> tally -> unit

val run :
  ?workers:int ->
  ?jobs:int ->
  ?seed:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?pool_bytes:int ->
  ?deadline_s:float ->
  unit ->
  tally
(** Defaults: 4 worker domains, 32 jobs, seed 1, 3 admission slots,
    queue bound 64, a 1 MiB shared memory pool, 3 ms deadlines.  Blocks
    until every job has its outcome. *)
