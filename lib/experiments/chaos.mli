(** Multi-domain chaos/soak harness for resource-governed sessions.

    Worker domains submit seeded query jobs — a mix of clean runs,
    wall-clock deadlines, deterministic cancellations, tight memory
    budgets and injected I/O faults, across both engines including
    parallel exchange — through one shared {!Dqep_exec.Session}.  The
    harness checks the governed-session contract: every job gets exactly
    one typed outcome ({!tally.escaped} empty), no outcome leaks a
    buffer-pool pin ({!tally.leaks} empty), and no checkpointed
    intermediate leaks memory-governor bytes ({!tally.checkpoint_leaks}
    empty) — the busted and faulty-resume scenarios run with
    checkpointed recovery enabled.  Hang-freedom is the caller's
    watchdog's job.

    Deterministic in [seed] up to domain scheduling: the job set is
    fixed, but which outcomes race to completion (shedding, pool
    pressure) varies with interleaving — the contract holds for all of
    them. *)

type scenario = Clean | Deadline | Cancel | Memory | Faulty | Busted | Faulty_resume

val scenario_name : scenario -> string

type tally = {
  total : int;
  completed : int;
  deadline_exceeded : int;
  memory_exceeded : int;
  cancelled : int;
  shed_queue_full : int;  (** shed at the door (full wait queue) *)
  shed_queue_timeout : int;  (** shed after waiting past the queue deadline *)
  exhausted : int;
  other_failures : int;  (** Infeasible/Rejected — expected to stay 0 *)
  failovers : int;  (** across completed jobs *)
  memory_aborts_recovered : int;
      (** memory-scenario jobs that completed via failover *)
  estimate_busted : int;
      (** jobs whose final outcome was the typed busted-estimate fault *)
  replans : int;  (** incremental re-optimizations across completed jobs *)
  replans_recovered : int;
      (** busted-scenario jobs that completed after at least one replan *)
  leaks : string list;  (** pin-leak reports; the contract demands [] *)
  checkpoint_leaks : string list;
      (** checkpoint bytes still charged after an outcome; must be [] *)
  escaped : string list;  (** exceptions escaping submit; must be [] *)
  session : Dqep_exec.Session.stats;
}

val pp_tally : Format.formatter -> tally -> unit

val run :
  ?workers:int ->
  ?jobs:int ->
  ?seed:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?pool_bytes:int ->
  ?deadline_s:float ->
  unit ->
  tally
(** Defaults: 4 worker domains, 32 jobs, seed 1, 3 admission slots,
    queue bound 64, a 1 MiB shared memory pool, 3 ms deadlines.  Blocks
    until every job has its outcome. *)

(** {1 The serving-layer fault storm}

    Client domains hammer a {!Dqep_serve.Server} over the paper catalog
    with a fixed set of query shapes — one of which is {e poisoned}:
    every database the server borrows for it runs on dead storage
    (permanent faults on all I/O).  The storm mixes millisecond
    deadlines and admission overload into the same request stream.

    The serving contract under the storm: every request line gets
    exactly one typed response ({!serve_tally.untyped} empty, no
    [class=internal] errors), no database leaks a buffer-pool pin, the
    session memory pool drains to zero, the poisoned shape trips its
    breaker, and the healthy shapes keep completing. *)

type serve_tally = {
  requests : int;
  ok : int;
  cache_hits_served : int;  (** OK responses answered from the plan cache *)
  failed_typed : int;  (** ERR with a typed in-flight failure class *)
  client_errors : int;  (** ERR with a request-side class; expected 0 *)
  shed_queue_full : int;
  shed_queue_timeout : int;
  shed_breaker_open : int;
  poisoned_trips : int;  (** breaker trips of the poisoned shape *)
  poisoned_ok : int;  (** poisoned-shape requests that completed anyway *)
  healthy_ok : int;  (** completions across the healthy shapes *)
  untyped : string list;  (** unparseable/blank responses; must be [] *)
  internal_errors : string list;  (** class=internal details; must be [] *)
  leaks : string list;  (** buffer-pool pin leaks across every db; must be [] *)
  pool_leak_bytes : int;  (** session memory pool bytes after drain; must be 0 *)
  server : Dqep_serve.Server.stats;
}

val pp_serve_tally : Format.formatter -> serve_tally -> unit

val serve_soak :
  ?clients:int ->
  ?requests:int ->
  ?seed:int ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?relations:int ->
  unit ->
  serve_tally
(** Defaults: 4 client domains, 256 requests, seed 1, 3 admission
    slots, queue bound 4 (8+ clients overload it, exercising door
    sheds), 3 relations (= 3 shapes, shape 0 poisoned).
    The engine follows [DQEP_ENGINE], as everywhere.  Blocks until
    every request has its response. *)
