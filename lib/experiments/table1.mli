(** The paper's Table 1: logical and physical algebra operators. *)

val report : unit -> Report.t
