module R = Report
module Stats = Dqep_util.Stats
module Optimizer = Dqep_optimizer.Optimizer
module Queries = Dqep_workload.Queries
module Paramgen = Dqep_workload.Paramgen
module Database = Dqep_storage.Database
module Buffer_pool = Dqep_storage.Buffer_pool
module Executor = Dqep_exec.Executor

let optimize_exn ~mode (q : Queries.t) =
  match Optimizer.optimize ~mode q.Queries.catalog q.Queries.query with
  | Ok r -> r
  | Error e -> invalid_arg ("Validation: optimization failed: " ^ e)

let io_of (stats : Executor.run_stats) =
  float_of_int
    (stats.Executor.io.Buffer_pool.physical_reads
    + stats.Executor.io.Buffer_pool.physical_writes)

let report ?(relations_list = [ 1; 2; 3 ]) ?(trials = 20) ?(seed = 424) () =
  let rows =
    List.map
      (fun relations ->
        let q = Queries.chain ~relations in
        let db = Database.build ~seed q.Queries.catalog in
        let static = optimize_exn ~mode:Optimizer.static q in
        let dynamic =
          optimize_exn ~mode:(Optimizer.dynamic ~uncertain_memory:true ()) q
        in
        let bindings =
          Paramgen.bindings ~seed:(seed + relations) ~trials
            ~host_vars:q.Queries.host_vars ~uncertain_memory:true ()
        in
        let static_io = ref [] in
        let dynamic_io = ref [] in
        let dynamic_wins = ref 0 in
        List.iter
          (fun b ->
            let _, s = Executor.run db b static.Optimizer.plan in
            let _, d = Executor.run db b dynamic.Optimizer.plan in
            static_io := io_of s :: !static_io;
            dynamic_io := io_of d :: !dynamic_io;
            if io_of d <= io_of s then incr dynamic_wins)
          bindings;
        let s_mean = Stats.mean !static_io and d_mean = Stats.mean !dynamic_io in
        [ Printf.sprintf "%d-way" relations;
          string_of_int trials;
          R.f2 s_mean;
          R.f2 d_mean;
          R.f2 (s_mean /. d_mean);
          Printf.sprintf "%d/%d" !dynamic_wins trials ])
      relations_list
  in
  R.make ~id:"execution"
    ~title:"Cost-model validation: real executed I/O, static vs dynamic plans"
    ~header:
      [ "query"; "bindings"; "static avg I/O [pages]"; "dynamic avg I/O [pages]";
        "ratio"; "dynamic <= static" ]
    ~rows
    ~notes:
      [ "actual physical page reads+writes counted through the buffer pool \
         while executing on materialized synthetic data; confirms that the \
         anticipated-cost comparisons of Figure 4 reflect real work" ]
    ()
