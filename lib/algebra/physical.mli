(** The physical algebra (paper, Table 1): the algorithms of the
    execution engine, plus the two enforcers [Sort] and [Choose_plan]. *)

type op =
  | File_scan of string
  | Btree_scan of { rel : string; attr : string }
      (** full retrieval through an unclustered B-tree, delivering the
          index order *)
  | Filter of Predicate.select
  | Filter_btree_scan of { rel : string; attr : string; pred : Predicate.select }
      (** index scan restricted by the selection predicate *)
  | Hash_join of Predicate.equi list
      (** the left input is the build input *)
  | Merge_join of Predicate.equi list
      (** inputs must be sorted on their join columns *)
  | Index_join of {
      preds : Predicate.equi list;
      inner_rel : string;
      inner_attr : string;  (** indexed join column of the inner relation *)
      inner_filter : Predicate.select option;
          (** residual selection applied to fetched inner records *)
    }
      (** index nested-loops: the single child is the outer input *)
  | Sort of Col.t list  (** enforcer for sort order *)
  | Choose_plan
      (** enforcer for plan robustness: children are equivalent
          alternative plans, chosen among at start-up-time *)

val name : op -> string
(** Operator name as in the paper's Table 1. *)

val arity : op -> [ `Leaf | `Unary | `Binary | `Variadic ]

val is_enforcer : op -> bool

val pp : Format.formatter -> op -> unit
