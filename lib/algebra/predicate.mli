(** Predicates of the logical algebra.

    A {e selection} predicate is a range restriction [attr <= c].  Its
    selectivity is either known at compile-time ([Bound]) or depends on a
    host variable supplied only at start-up-time ([Host_var]) — the
    paper's "unbound predicate" whose selectivity interval is [\[0, 1\]]
    during optimization.

    A {e join} predicate is an equality between columns of the two join
    inputs. *)

type selectivity =
  | Bound of float  (** known selectivity in [\[0, 1\]] *)
  | Host_var of string  (** named run-time parameter *)

type select = { target : Col.t; selectivity : selectivity }

val select : rel:string -> attr:string -> selectivity -> select
(** @raise Invalid_argument if a [Bound] selectivity is outside [0, 1]. *)

val select_compare : select -> select -> int
val select_equal : select -> select -> bool

val host_var : select -> string option
(** The host variable this predicate depends on, if any. *)

type equi = { left : Col.t; right : Col.t }

val equi : left:Col.t -> right:Col.t -> equi
val mirror : equi -> equi
(** Swap sides, for join commutativity. *)

val equi_equal : equi -> equi -> bool
(** Equality up to mirroring. *)

val pp_select : Format.formatter -> select -> unit
val pp_equi : Format.formatter -> equi -> unit
