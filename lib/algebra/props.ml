type order =
  | Unordered
  | Ordered of Col.t list

type t = { order : order }

let unordered = { order = Unordered }

let ordered cols =
  if cols = [] then invalid_arg "Props.ordered: empty column list";
  { order = Ordered cols }

type required =
  | Any
  | Sorted of Col.t

let satisfies t required =
  match (required, t.order) with
  | Any, _ -> true
  | Sorted _, Unordered -> false
  | Sorted c, Ordered majors -> List.exists (Col.equal c) majors

let required_equal a b =
  match (a, b) with
  | Any, Any -> true
  | Sorted x, Sorted y -> Col.equal x y
  | Any, Sorted _ | Sorted _, Any -> false

let pp ppf t =
  match t.order with
  | Unordered -> Format.pp_print_string ppf "unordered"
  | Ordered cols ->
    Format.fprintf ppf "ordered(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Col.pp)
      cols

let pp_required ppf = function
  | Any -> Format.pp_print_string ppf "any"
  | Sorted c -> Format.fprintf ppf "sorted(%a)" Col.pp c
