type t = { rel : string; attr : string }

let make ~rel ~attr = { rel; attr }

let compare a b =
  match String.compare a.rel b.rel with
  | 0 -> String.compare a.attr b.attr
  | c -> c

let equal a b = compare a b = 0
let pp ppf c = Format.fprintf ppf "%s.%s" c.rel c.attr
let to_string c = c.rel ^ "." ^ c.attr
