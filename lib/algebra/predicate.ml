type selectivity =
  | Bound of float
  | Host_var of string

type select = { target : Col.t; selectivity : selectivity }

let select ~rel ~attr selectivity =
  (match selectivity with
  | Bound s when s < 0. || s > 1. ->
    invalid_arg "Predicate.select: selectivity out of [0, 1]"
  | Bound _ | Host_var _ -> ());
  { target = Col.make ~rel ~attr; selectivity }

let selectivity_compare a b =
  match (a, b) with
  | Bound x, Bound y -> Float.compare x y
  | Bound _, Host_var _ -> -1
  | Host_var _, Bound _ -> 1
  | Host_var x, Host_var y -> String.compare x y

let select_compare a b =
  match Col.compare a.target b.target with
  | 0 -> selectivity_compare a.selectivity b.selectivity
  | c -> c

let select_equal a b = select_compare a b = 0

let host_var s =
  match s.selectivity with Bound _ -> None | Host_var v -> Some v

type equi = { left : Col.t; right : Col.t }

let equi ~left ~right = { left; right }
let mirror e = { left = e.right; right = e.left }

let equi_equal a b =
  (Col.equal a.left b.left && Col.equal a.right b.right)
  || (Col.equal a.left b.right && Col.equal a.right b.left)

let pp_select ppf s =
  match s.selectivity with
  | Bound v -> Format.fprintf ppf "%a <= (sel=%.3g)" Col.pp s.target v
  | Host_var h -> Format.fprintf ppf "%a <= :%s" Col.pp s.target h

let pp_equi ppf e = Format.fprintf ppf "%a = %a" Col.pp e.left Col.pp e.right
