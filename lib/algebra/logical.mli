(** The logical algebra (paper, Table 1): [Get_set], [Select], [Join].

    A logical expression describes a query as given to the optimizer; it
    carries no execution decisions. *)

type t =
  | Get_set of string  (** retrieve a stored relation *)
  | Select of t * Predicate.select
  | Join of t * t * Predicate.equi list
      (** natural equi-join under a conjunction of predicates *)

val relations : t -> string list
(** Base relations, in leaf order (duplicates preserved). *)

val selections : t -> Predicate.select list
val join_predicates : t -> Predicate.equi list

val host_vars : t -> string list
(** Sorted, de-duplicated host variables of all unbound predicates. *)

val validate :
  Dqep_catalog.Catalog.t -> t -> (unit, Dqep_util.Diagnostic.t list) result
(** Check that all relations and attributes exist, every relation occurs
    at most once, each selection targets a relation of its input, and
    each join predicate spans its two inputs.  Collects {e every}
    violation as a typed diagnostic (codes DQEP001-DQEP007), in
    traversal order. *)

val pp : Format.formatter -> t -> unit
