type op =
  | File_scan of string
  | Btree_scan of { rel : string; attr : string }
  | Filter of Predicate.select
  | Filter_btree_scan of { rel : string; attr : string; pred : Predicate.select }
  | Hash_join of Predicate.equi list
  | Merge_join of Predicate.equi list
  | Index_join of {
      preds : Predicate.equi list;
      inner_rel : string;
      inner_attr : string;
      inner_filter : Predicate.select option;
    }
  | Sort of Col.t list
  | Choose_plan

let name = function
  | File_scan _ -> "File-Scan"
  | Btree_scan _ -> "B-tree-Scan"
  | Filter _ -> "Filter"
  | Filter_btree_scan _ -> "Filter-B-tree-Scan"
  | Hash_join _ -> "Hash-Join"
  | Merge_join _ -> "Merge-Join"
  | Index_join _ -> "Index-Join"
  | Sort _ -> "Sort"
  | Choose_plan -> "Choose-Plan"

let arity = function
  | File_scan _ | Btree_scan _ | Filter_btree_scan _ -> `Leaf
  | Filter _ | Sort _ | Index_join _ -> `Unary
  | Hash_join _ | Merge_join _ -> `Binary
  | Choose_plan -> `Variadic

let is_enforcer = function
  | Sort _ | Choose_plan -> true
  | File_scan _ | Btree_scan _ | Filter _ | Filter_btree_scan _ | Hash_join _
  | Merge_join _ | Index_join _ -> false

let pp_preds ppf ps =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
    Predicate.pp_equi ppf ps

let pp ppf = function
  | File_scan r -> Format.fprintf ppf "File-Scan %s" r
  | Btree_scan b -> Format.fprintf ppf "B-tree-Scan %s.%s" b.rel b.attr
  | Filter p -> Format.fprintf ppf "Filter [%a]" Predicate.pp_select p
  | Filter_btree_scan b ->
    Format.fprintf ppf "Filter-B-tree-Scan %s.%s [%a]" b.rel b.attr
      Predicate.pp_select b.pred
  | Hash_join ps -> Format.fprintf ppf "Hash-Join [%a]" pp_preds ps
  | Merge_join ps -> Format.fprintf ppf "Merge-Join [%a]" pp_preds ps
  | Index_join j ->
    Format.fprintf ppf "Index-Join [%a] via %s.%s%a" pp_preds j.preds j.inner_rel
      j.inner_attr
      (fun ppf -> function
        | None -> ()
        | Some p -> Format.fprintf ppf " filter [%a]" Predicate.pp_select p)
      j.inner_filter
  | Sort cols ->
    Format.fprintf ppf "Sort (%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Col.pp)
      cols
  | Choose_plan -> Format.pp_print_string ppf "Choose-Plan"
