(** Tuple schemas: ordered column lists with positional lookup. *)

type t

val of_relation : Dqep_catalog.Relation.t -> t
val concat : t -> t -> t
val columns : t -> Col.t array
val width : t -> int

val position : t -> Col.t -> int option
val position_exn : t -> Col.t -> int
(** @raise Not_found if the column is absent. *)

val mem : t -> Col.t -> bool
val pp : Format.formatter -> t -> unit
