(** A column reference: relation name and attribute name.

    Columns stay qualified through joins, so physical properties such as
    sort order remain meaningful over intermediate results. *)

type t = { rel : string; attr : string }

val make : rel:string -> attr:string -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
