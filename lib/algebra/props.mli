(** Physical properties and property requirements (paper, Section 2).

    The only interesting physical property in the prototype's algebra is
    sort order; "plan robustness" — the property enforced by choose-plan
    — is handled by the search engine itself. *)

type order =
  | Unordered
  | Ordered of Col.t list
      (** the columns by which the output is sorted {e as major key} — an
          equivalence class, not a major-to-minor list: a merge join's
          output is sorted on both join columns at once because their
          values are equal on every row (the System R "interesting
          orders" equivalence) *)

type t = { order : order }

val unordered : t
val ordered : Col.t list -> t

type required =
  | Any
  | Sorted of Col.t

val satisfies : t -> required -> bool
(** An [Ordered] output satisfies [Sorted c] iff [c] is one of its
    (equal-valued) major sort columns. *)

val required_equal : required -> required -> bool
val pp : Format.formatter -> t -> unit
val pp_required : Format.formatter -> required -> unit
