type t = Col.t array

let of_relation (r : Dqep_catalog.Relation.t) =
  Array.of_list
    (List.map
       (fun (a : Dqep_catalog.Attribute.t) -> Col.make ~rel:r.name ~attr:a.name)
       r.attributes)

let concat = Array.append
let columns t = t
let width = Array.length

let position t col =
  let n = Array.length t in
  let rec go i =
    if i >= n then None else if Col.equal t.(i) col then Some i else go (i + 1)
  in
  go 0

let position_exn t col =
  match position t col with Some i -> i | None -> raise Not_found

let mem t col = position t col <> None

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Col.pp)
    (Array.to_seq t)
