module Catalog = Dqep_catalog.Catalog
module Relation = Dqep_catalog.Relation

type t =
  | Get_set of string
  | Select of t * Predicate.select
  | Join of t * t * Predicate.equi list

let rec relations = function
  | Get_set r -> [ r ]
  | Select (e, _) -> relations e
  | Join (l, r, _) -> relations l @ relations r

let rec selections = function
  | Get_set _ -> []
  | Select (e, p) -> p :: selections e
  | Join (l, r, _) -> selections l @ selections r

let rec join_predicates = function
  | Get_set _ -> []
  | Select (e, _) -> join_predicates e
  | Join (l, r, ps) -> ps @ join_predicates l @ join_predicates r

let host_vars t =
  selections t
  |> List.filter_map Predicate.host_var
  |> List.sort_uniq String.compare

let validate catalog t =
  let ( let* ) = Result.bind in
  let check_col (c : Col.t) =
    match Catalog.relation catalog c.rel with
    | None -> Error (Printf.sprintf "unknown relation %s" c.rel)
    | Some r ->
      if Relation.attribute r c.attr = None then
        Error (Printf.sprintf "unknown attribute %s" (Col.to_string c))
      else Ok ()
  in
  let rec go = function
    | Get_set r ->
      if Catalog.relation catalog r = None then
        Error (Printf.sprintf "unknown relation %s" r)
      else Ok [ r ]
    | Select (e, p) ->
      let* rels = go e in
      let* () = check_col p.target in
      (match p.selectivity with
      | Predicate.Bound s when s < 0. || s > 1. ->
        Error "selection selectivity out of [0, 1]"
      | Predicate.Bound _ | Predicate.Host_var _ ->
        if List.mem p.target.rel rels then Ok rels
        else
          Error
            (Printf.sprintf "selection on %s does not target its input"
               (Col.to_string p.target)))
    | Join (l, r, ps) ->
      let* left = go l in
      let* right = go r in
      (match List.find_opt (fun rel -> List.mem rel right) left with
      | Some rel -> Error (Printf.sprintf "relation %s occurs on both sides" rel)
      | None ->
        let rec check_preds = function
          | [] -> Ok (left @ right)
          | (p : Predicate.equi) :: rest ->
            let* () = check_col p.left in
            let* () = check_col p.right in
            let spans =
              (List.mem p.left.rel left && List.mem p.right.rel right)
              || (List.mem p.left.rel right && List.mem p.right.rel left)
            in
            if spans then check_preds rest
            else
              Error
                (Format.asprintf "join predicate %a does not span its inputs"
                   Predicate.pp_equi p)
        in
        if ps = [] then Error "cross products are not supported"
        else check_preds ps)
  in
  let* rels = go t in
  let uniq = List.sort_uniq String.compare rels in
  if List.length uniq <> List.length rels then
    Error "a relation occurs more than once in the query"
  else Ok ()

let rec pp ppf = function
  | Get_set r -> Format.fprintf ppf "Get-Set %s" r
  | Select (e, p) ->
    Format.fprintf ppf "@[<v 2>Select [%a]@,%a@]" Predicate.pp_select p pp e
  | Join (l, r, ps) ->
    Format.fprintf ppf "@[<v 2>Join [%a]@,%a@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
         Predicate.pp_equi)
      ps pp l pp r
