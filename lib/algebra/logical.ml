module Catalog = Dqep_catalog.Catalog
module Relation = Dqep_catalog.Relation

type t =
  | Get_set of string
  | Select of t * Predicate.select
  | Join of t * t * Predicate.equi list

let rec relations = function
  | Get_set r -> [ r ]
  | Select (e, _) -> relations e
  | Join (l, r, _) -> relations l @ relations r

let rec selections = function
  | Get_set _ -> []
  | Select (e, p) -> p :: selections e
  | Join (l, r, _) -> selections l @ selections r

let rec join_predicates = function
  | Get_set _ -> []
  | Select (e, _) -> join_predicates e
  | Join (l, r, ps) -> ps @ join_predicates l @ join_predicates r

let host_vars t =
  selections t
  |> List.filter_map Predicate.host_var
  |> List.sort_uniq String.compare

(* Validation accumulates every problem instead of stopping at the first:
   the traversal carries the relation list of each subtree (unknown
   relations included, so structural checks still apply to them) and
   appends typed diagnostics as it goes. *)
let validate catalog t =
  let module D = Dqep_util.Diagnostic in
  let diags = ref [] in
  let add code fmt =
    Format.kasprintf
      (fun msg -> diags := D.make ~site:D.Query code msg :: !diags)
      fmt
  in
  let check_col (c : Col.t) =
    match Catalog.relation catalog c.rel with
    | None -> add D.Unknown_relation "unknown relation %s" c.rel
    | Some r ->
      if Relation.attribute r c.attr = None then
        add D.Unknown_attribute "unknown attribute %s" (Col.to_string c)
  in
  let rec go = function
    | Get_set r ->
      if Catalog.relation catalog r = None then
        add D.Unknown_relation "unknown relation %s" r;
      [ r ]
    | Select (e, p) ->
      let rels = go e in
      check_col p.target;
      (match p.selectivity with
      | Predicate.Bound s when s < 0. || s > 1. ->
        add D.Selectivity_range "selection selectivity %g out of [0, 1]" s
      | Predicate.Bound _ | Predicate.Host_var _ -> ());
      if not (List.mem p.target.rel rels) then
        add D.Selection_target "selection on %s does not target its input"
          (Col.to_string p.target);
      rels
    | Join (l, r, ps) ->
      let left = go l in
      let right = go r in
      (match List.find_opt (fun rel -> List.mem rel right) left with
      | Some rel ->
        add D.Duplicate_relation "relation %s occurs on both sides of a join"
          rel
      | None -> ());
      if ps = [] then add D.Cross_product "cross products are not supported";
      List.iter
        (fun (p : Predicate.equi) ->
          check_col p.left;
          check_col p.right;
          let spans =
            (List.mem p.left.rel left && List.mem p.right.rel right)
            || (List.mem p.left.rel right && List.mem p.right.rel left)
          in
          if not spans then
            add D.Join_span "join predicate %s does not span its inputs"
              (Format.asprintf "%a" Predicate.pp_equi p))
        ps;
      left @ right
  in
  let rels = go t in
  let uniq = List.sort_uniq String.compare rels in
  if
    List.length uniq <> List.length rels
    && not (List.exists (fun d -> d.D.code = D.Duplicate_relation) !diags)
  then add D.Duplicate_relation "a relation occurs more than once in the query";
  match List.rev !diags with [] -> Ok () | ds -> Error ds

let rec pp ppf = function
  | Get_set r -> Format.fprintf ppf "Get-Set %s" r
  | Select (e, p) ->
    Format.fprintf ppf "@[<v 2>Select [%a]@,%a@]" Predicate.pp_select p pp e
  | Join (l, r, ps) ->
    Format.fprintf ppf "@[<v 2>Join [%a]@,%a@,%a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
         Predicate.pp_equi)
      ps pp l pp r
