(** Event sinks: where a trace's events go.

    Sinks are thread-safe — exchange worker domains emit through the
    same sink as the coordinating thread. *)

type format =
  | Jsonl  (** one JSON object per line ({!Event.to_json}) *)
  | Compact  (** one human-readable text line ({!Event.pp_compact}) *)

type t

val null : t
(** Discards everything. *)

val memory : unit -> t * (unit -> Event.t list)
(** In-memory sink for tests; the closure returns the events emitted so
    far in emission order. *)

val channel : ?format:format -> out_channel -> t
(** Writes one line per event; [format] defaults to [Jsonl].  The
    channel is not closed by the sink. *)

val buffer : ?format:format -> Buffer.t -> t

val emit : t -> Event.t -> unit
val flush : t -> unit

val tee : t -> t -> t
(** [tee a b] forwards every event (and flush) to both sinks. *)
