(** Trace events: the wire format of the observation pipeline.

    Every observable fact — a span opening or closing, a counter
    increment, a gauge sample, a per-operator cardinality tap — is one
    event, stamped with a sequence number and a clock reading, and
    rendered either as one JSON object per line (machine sinks) or a
    compact text line (human sinks).

    The JSON schema, validated by {!validate_json} and by
    [dqep trace validate]:

    - every event: ["seq" : int >= 0], ["at" : number],
      ["kind" : string], optional ["span" : int] (enclosing span id);
    - [span_begin]: ["name" : string];
    - [span_end]: ["name" : string], ["elapsed" : number];
    - [count]: ["counter" : string] (a {!Counter.name}),
      ["delta" : int], ["total" : int];
    - [gauge]: ["name" : string], ["value" : number];
    - [tap]: ["pid" : int], ["op" : string], ["rows" : int],
      ["batches" : int]. *)

type payload =
  | Span_begin of { name : string }
  | Span_end of { name : string; elapsed : float }
  | Count of { counter : Counter.t; delta : int; total : int }
  | Gauge of { name : string; value : float }
  | Tap of { pid : int; op : string; rows : int; batches : int }

type t = {
  seq : int;  (** per-trace sequence number, 0-based *)
  at : float;  (** trace clock reading, seconds *)
  span : int option;  (** id of the enclosing span, if any *)
  payload : payload;
}

val kind : payload -> string
(** The ["kind"] discriminator: ["span_begin"], ["span_end"],
    ["count"], ["gauge"] or ["tap"]. *)

val to_jsonv : t -> Dqep_util.Json.t
val to_json : t -> string

val validate_json : string -> (unit, string) result
(** [validate_json line] checks one JSON-lines trace record against the
    schema above: parses, has the required fields with the right types
    for its kind, and names only counters from the closed taxonomy. *)

val pp_compact : Format.formatter -> t -> unit
(** One-line human rendering used by the compact sink. *)
