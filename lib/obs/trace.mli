(** The trace recorder: counters, spans, gauges, and operator taps for
    one unit of observation (a query run, a buffer pool's lifetime, a
    session).

    Cost discipline — the reason this can sit on every hot path:

    - {!null} is the disabled trace; every operation short-circuits on
      one boolean (the [Governor.none] pattern), so code threads a trace
      unconditionally.
    - Counter increments are one atomic add, safe from exchange worker
      domains.  Counter and tap {e totals} are emitted as events only at
      {!flush}, so trace files are bounded by the taxonomy size, not the
      tuple count.
    - Spans and gauges emit live, but only when the trace has a sink.
    - Operator taps record only when requested ([~taps:true]), keeping
      the per-delivery bookkeeping off the default path. *)

type t

val null : t
(** The disabled trace: every operation is a no-op, reads return
    zeros/empties. *)

val create :
  ?clock:(unit -> float) -> ?sink:Sink.t -> ?taps:bool -> unit -> t
(** A live trace.  [clock] (default [Sys.time]) is read relative to
    creation time for event timestamps; inject a fake for deterministic
    tests.  Without [sink], counters/taps/gauges still accumulate for
    in-process reads but no events are emitted.  [taps] (default
    [false]) enables per-operator cardinality taps. *)

val enabled : t -> bool
(** [false] only for {!null}. *)

val emitting : t -> bool
(** Whether a sink was attached at creation. *)

val taps_enabled : t -> bool

val now : t -> float
(** Seconds since the trace was created, on the trace's clock. *)

(** {1 Counters} *)

val add : t -> Counter.t -> int -> unit
val incr : t -> Counter.t -> unit
val get : t -> Counter.t -> int

val counts : t -> (Counter.t * int) list
(** Non-zero counters in taxonomy order. *)

(** {1 Spans} *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a named span: a [Span_begin] event,
    then [f ()], then a [Span_end] carrying the elapsed time — also on
    exceptions, which are re-raised.  Nested spans record their parent.
    Without a sink this is just [f ()]. *)

(** {1 Gauges} *)

val gauge : t -> string -> float -> unit
(** Record (and emit, if a sink is attached) a point-in-time sample. *)

val gauges : t -> (string * float) list
(** Latest value of each gauge, sorted by name. *)

(** {1 Operator taps}

    Per-operator cardinality observations, keyed by plan node [pid] —
    the raw material of feedback re-optimization.  Recording happens
    only when {!taps_enabled}. *)

val tap : t -> pid:int -> op:string -> rows:int -> unit
(** Record one delivery of [rows] tuples from node [pid]; each call
    also counts one batch. *)

val tap_rows : t -> int -> int option
(** Total rows observed from a node, if it was tapped. *)

val taps : t -> (int * string * int * int) list
(** [(pid, op, rows, batches)] for every tapped node, sorted by pid. *)

(** {1 Flushing} *)

val flush : t -> unit
(** Emit final counter and tap totals as events (when a sink is
    attached) and flush the sink. *)
