(** The closed taxonomy of counters.

    A closed variant rather than free-form strings: traces store totals
    in a flat atomic array indexed by {!index}, so bumping a counter on
    a hot path is a single atomic add, and every consumer (run_stats
    views, the CLI, the trace schema validator) can enumerate the full
    set. *)

type t =
  (* storage *)
  | Logical_reads  (** buffer-pool page requests, hit or miss *)
  | Physical_reads  (** pages actually read from the disk layer *)
  | Physical_writes  (** pages actually written to the disk layer *)
  | Read_faults  (** injected/observed I/O faults absorbed on read *)
  | Write_faults  (** injected/observed I/O faults absorbed on write *)
  (* execution *)
  | Rows_out  (** tuples produced by the plan root *)
  | Batches_out  (** batches produced by the plan root (batch engine) *)
  | Spill_partitions  (** hash-join partitions spilled to temp heaps *)
  | Spill_runs  (** external-sort runs written to temp heaps *)
  | Spilled_tuples  (** tuples that crossed a spill boundary *)
  (* resilience *)
  | Attempts  (** plan activations, including retries and failovers *)
  | Retries  (** same-plan re-activations after a transient fault *)
  | Faults_absorbed  (** faults survived without failing the query *)
  | Budget_aborts  (** activations abandoned on the I/O budget guard *)
  | Memory_aborts  (** activations abandoned on the memory governor *)
  | Failovers  (** choose-plan switches to an alternative *)
  (* governance *)
  | Deadline_aborts  (** queries stopped by a wall-clock deadline *)
  | Cancellations  (** queries stopped by explicit cancellation *)
  (* session *)
  | Submitted
  | Admitted
  | Completed
  | Failed
  | Shed_queue_full
  | Shed_queue_timeout
  (* checkpointed recovery *)
  | Replans  (** incremental re-optimizations after a busted estimate *)
  | Checkpoints_taken  (** intermediates materialized at blocking points *)
  | Checkpoint_bytes  (** bytes charged to the governor for checkpoints *)
  | Resume_hits  (** checkpointed intermediates served instead of re-execution *)
  (* static analysis *)
  | Rejected_precheck
      (** submissions refused by the session's static budget precheck
          (DQEP503) before any execution *)
  (* serving *)
  | Cache_hit  (** plan-cache lookups that skipped the optimizer *)
  | Cache_miss  (** plan-cache lookups that fell through to optimize *)
  | Cache_evicted  (** entries dropped by LRU capacity pressure *)
  | Cache_invalidated_drift  (** entries evicted on catalog drift *)
  | Cache_invalidated_replan  (** entries evicted after a replan storm *)
  | Breaker_opened  (** per-shape circuit breakers tripped open *)
  | Breaker_closed  (** breakers recovered to closed after probes *)
  | Shed_breaker_open  (** requests shed fast because their shape's breaker was open *)

val all : t list
(** Every counter, in {!index} order. *)

val count : int
(** [List.length all]. *)

val index : t -> int
(** Dense index in [\[0, count)], stable within a build. *)

val name : t -> string
(** Stable snake_case name used in traces and JSON reports. *)

val of_name : string -> t option
val pp : Format.formatter -> t -> unit
