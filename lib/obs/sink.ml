type format = Jsonl | Compact

type t = { emit : Event.t -> unit; flush : unit -> unit }

let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let memory () =
  let events = ref [] in
  let sink =
    { emit = (fun e -> events := e :: !events); flush = (fun () -> ()) }
  in
  (sink, fun () -> List.rev !events)

let render format e =
  match format with
  | Jsonl -> Event.to_json e
  | Compact -> Format.asprintf "%a" Event.pp_compact e

let channel ?(format = Jsonl) oc =
  (* Serialize writers: exchange worker domains may emit concurrently. *)
  let mu = Mutex.create () in
  {
    emit =
      (fun e ->
        let line = render format e in
        Mutex.lock mu;
        output_string oc line;
        output_char oc '\n';
        Mutex.unlock mu);
    flush =
      (fun () ->
        Mutex.lock mu;
        flush oc;
        Mutex.unlock mu);
  }

let buffer ?(format = Jsonl) buf =
  let mu = Mutex.create () in
  {
    emit =
      (fun e ->
        let line = render format e in
        Mutex.lock mu;
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        Mutex.unlock mu);
    flush = (fun () -> ());
  }

let emit t e = t.emit e
let flush t = t.flush ()

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }
