type tap_cell = { op : string; mutable rows : int; mutable batches : int }

type t = {
  enabled : bool;
  clock : unit -> float;
  started : float;
  sink : Sink.t;
  emitting : bool;
  taps_on : bool;
  counts : int Atomic.t array;
  seq : int Atomic.t;
  span_ids : int Atomic.t;
  current_span : int option Atomic.t;
  mu : Mutex.t; (* protects [taps] and [gauges] *)
  taps : (int, tap_cell) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
}

let make ~enabled ~clock ~sink ~emitting ~taps_on =
  {
    enabled;
    clock;
    started = (if enabled then clock () else 0.);
    sink;
    emitting;
    taps_on;
    counts = Array.init Counter.count (fun _ -> Atomic.make 0);
    seq = Atomic.make 0;
    span_ids = Atomic.make 0;
    current_span = Atomic.make None;
    mu = Mutex.create ();
    taps = Hashtbl.create 7;
    gauges = Hashtbl.create 7;
  }

(* The disabled trace: every operation short-circuits on [enabled],
   mirroring [Governor.none]'s limited-flag pattern, so code can thread
   a trace unconditionally without paying for it. *)
let null =
  make ~enabled:false
    ~clock:(fun () -> 0.)
    ~sink:Sink.null ~emitting:false ~taps_on:false

let create ?(clock = Sys.time) ?sink ?(taps = false) () =
  let sink, emitting =
    match sink with None -> (Sink.null, false) | Some s -> (s, true)
  in
  make ~enabled:true ~clock ~sink ~emitting ~taps_on:taps

let enabled t = t.enabled
let emitting t = t.emitting
let taps_enabled t = t.enabled && t.taps_on
let now t = t.clock () -. t.started

let emit t span payload =
  let seq = Atomic.fetch_and_add t.seq 1 in
  Sink.emit t.sink { Event.seq; at = now t; span; payload }

(* --- counters ------------------------------------------------------------- *)

let add t c n =
  if t.enabled && n <> 0 then
    ignore (Atomic.fetch_and_add t.counts.(Counter.index c) n)

let incr t c = add t c 1
let get t c = Atomic.get t.counts.(Counter.index c)

let counts t =
  List.filter_map
    (fun c ->
      let v = get t c in
      if v = 0 then None else Some (c, v))
    Counter.all

(* --- spans ---------------------------------------------------------------- *)

let span t name f =
  if not (t.enabled && t.emitting) then f ()
  else begin
    let id = Atomic.fetch_and_add t.span_ids 1 in
    let parent = Atomic.get t.current_span in
    let t0 = now t in
    emit t parent (Event.Span_begin { name });
    Atomic.set t.current_span (Some id);
    let finish () =
      Atomic.set t.current_span parent;
      emit t (Some id) (Event.Span_end { name; elapsed = now t -. t0 })
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* --- gauges --------------------------------------------------------------- *)

let gauge t name value =
  if t.enabled then begin
    Mutex.lock t.mu;
    Hashtbl.replace t.gauges name value;
    Mutex.unlock t.mu;
    if t.emitting then
      emit t (Atomic.get t.current_span) (Event.Gauge { name; value })
  end

let gauges t =
  Mutex.lock t.mu;
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.gauges [] in
  Mutex.unlock t.mu;
  List.sort compare l

(* --- operator taps -------------------------------------------------------- *)

let tap t ~pid ~op ~rows =
  if taps_enabled t then begin
    Mutex.lock t.mu;
    (match Hashtbl.find_opt t.taps pid with
    | Some cell ->
      cell.rows <- cell.rows + rows;
      cell.batches <- cell.batches + 1
    | None -> Hashtbl.add t.taps pid { op; rows; batches = 1 });
    Mutex.unlock t.mu
  end

let tap_rows t pid =
  if not t.enabled then None
  else begin
    Mutex.lock t.mu;
    let r = Hashtbl.find_opt t.taps pid in
    Mutex.unlock t.mu;
    Option.map (fun cell -> cell.rows) r
  end

let taps t =
  Mutex.lock t.mu;
  let l =
    Hashtbl.fold
      (fun pid cell acc -> (pid, cell.op, cell.rows, cell.batches) :: acc)
      t.taps []
  in
  Mutex.unlock t.mu;
  List.sort compare l

(* --- flush ----------------------------------------------------------------- *)

(* Counter and tap totals are emitted here, once, rather than per
   increment: the per-tuple path must stay one atomic add, and trace
   files must stay bounded by the number of counters, not the number of
   tuples. *)
let flush t =
  if t.enabled && t.emitting then begin
    List.iter
      (fun (c, total) ->
        emit t None (Event.Count { counter = c; delta = total; total }))
      (counts t);
    List.iter
      (fun (pid, op, rows, batches) ->
        emit t None (Event.Tap { pid; op; rows; batches }))
      (taps t)
  end;
  Sink.flush t.sink
