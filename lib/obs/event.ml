module Json = Dqep_util.Json

type payload =
  | Span_begin of { name : string }
  | Span_end of { name : string; elapsed : float }
  | Count of { counter : Counter.t; delta : int; total : int }
  | Gauge of { name : string; value : float }
  | Tap of { pid : int; op : string; rows : int; batches : int }

type t = { seq : int; at : float; span : int option; payload : payload }

let kind = function
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Count _ -> "count"
  | Gauge _ -> "gauge"
  | Tap _ -> "tap"

let to_jsonv e =
  let base =
    [ ("seq", Json.Int e.seq); ("at", Json.Float e.at);
      ("kind", Json.String (kind e.payload)) ]
  in
  let span =
    match e.span with None -> [] | Some id -> [ ("span", Json.Int id) ]
  in
  let rest =
    match e.payload with
    | Span_begin { name } -> [ ("name", Json.String name) ]
    | Span_end { name; elapsed } ->
      [ ("name", Json.String name); ("elapsed", Json.Float elapsed) ]
    | Count { counter; delta; total } ->
      [
        ("counter", Json.String (Counter.name counter));
        ("delta", Json.Int delta);
        ("total", Json.Int total);
      ]
    | Gauge { name; value } ->
      [ ("name", Json.String name); ("value", Json.Float value) ]
    | Tap { pid; op; rows; batches } ->
      [
        ("pid", Json.Int pid);
        ("op", Json.String op);
        ("rows", Json.Int rows);
        ("batches", Json.Int batches);
      ]
  in
  Json.Obj (base @ span @ rest)

let to_json e = Json.to_string (to_jsonv e)

(* Schema validation for one trace line — the check behind `dqep trace
   validate` and the CI smoke job.  Verifies the line parses, carries
   the required fields for its kind with the right types, and names only
   counters from the closed taxonomy. *)
let validate_json line =
  let ( let* ) r f = Result.bind r f in
  let require v key to_x =
    match Option.bind (Json.member key v) to_x with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing or mistyped field %S" key)
  in
  let* v = Json.parse line in
  let* seq = require v "seq" Json.to_int_opt in
  let* _at = require v "at" Json.to_float_opt in
  let* () =
    if seq < 0 then Error "negative seq" else Ok ()
  in
  let* () =
    match Json.member "span" v with
    | None -> Ok ()
    | Some s -> (
      match Json.to_int_opt s with
      | Some _ -> Ok ()
      | None -> Error "mistyped field \"span\"")
  in
  let* k = require v "kind" Json.to_string_opt in
  match k with
  | "span_begin" ->
    let* _ = require v "name" Json.to_string_opt in
    Ok ()
  | "span_end" ->
    let* _ = require v "name" Json.to_string_opt in
    let* _ = require v "elapsed" Json.to_float_opt in
    Ok ()
  | "count" ->
    let* name = require v "counter" Json.to_string_opt in
    let* _ = require v "delta" Json.to_int_opt in
    let* _ = require v "total" Json.to_int_opt in
    if Counter.of_name name = None then
      Error (Printf.sprintf "unknown counter %S" name)
    else Ok ()
  | "gauge" ->
    let* _ = require v "name" Json.to_string_opt in
    let* _ = require v "value" Json.to_float_opt in
    Ok ()
  | "tap" ->
    let* _ = require v "pid" Json.to_int_opt in
    let* _ = require v "op" Json.to_string_opt in
    let* _ = require v "rows" Json.to_int_opt in
    let* _ = require v "batches" Json.to_int_opt in
    Ok ()
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let pp_compact ppf e =
  let pad = match e.span with None -> "" | Some _ -> "  " in
  match e.payload with
  | Span_begin { name } -> Format.fprintf ppf "%s> %s @%.6f" pad name e.at
  | Span_end { name; elapsed } ->
    Format.fprintf ppf "%s< %s (%.6fs)" pad name elapsed
  | Count { counter; delta; total } ->
    Format.fprintf ppf "%s%a +%d = %d" pad Counter.pp counter delta total
  | Gauge { name; value } -> Format.fprintf ppf "%s%s = %g" pad name value
  | Tap { pid; op; rows; batches } ->
    Format.fprintf ppf "%stap #%d %s rows=%d batches=%d" pad pid op rows
      batches
