module Interval = Dqep_util.Interval
module Dist = Dqep_cost.Dist

(* A histogram: the exact [lo, hi] envelope every prior consumer relies
   on, plus at most [Dist.max_buckets] (value, count) buckets recording
   where inside the envelope the observations actually fell.  The bucket
   list is sorted by value and its extreme buckets always sit exactly at
   [lo] and [hi] (overflow merges absorb into the endpoints, mirroring
   [Dist.compact]), so the histogram's hull IS the band. *)
type band = {
  mutable lo : float;
  mutable hi : float;
  mutable n : int;
  mutable buckets : (float * int) list;
}

type t = {
  mu : Mutex.t;
  selectivities : (string, band) Hashtbl.t;
  cardinalities : (string, band) Hashtbl.t;
}

let create () =
  {
    mu = Mutex.create ();
    selectivities = Hashtbl.create 7;
    cardinalities = Hashtbl.create 7;
  }

let rec insert_bucket v = function
  | [] -> [ (v, 1) ]
  | (bv, c) :: rest ->
    if v = bv then (bv, c + 1) :: rest
    else if v < bv then (v, 1) :: (bv, c) :: rest
    else (bv, c) :: insert_bucket v rest

(* Merge the closest adjacent pair; a pair touching an end of the list
   collapses onto the endpoint's value so the extremes never move. *)
let compact_buckets buckets =
  let arr = Array.of_list buckets in
  let n = Array.length arr in
  if n <= Dist.max_buckets then buckets
  else begin
    let best = ref 0 and best_gap = ref infinity in
    for i = 0 to n - 2 do
      let gap = fst arr.(i + 1) -. fst arr.(i) in
      if gap < !best_gap then begin
        best_gap := gap;
        best := i
      end
    done;
    let i = !best in
    let v0, c0 = arr.(i) and v1, c1 = arr.(i + 1) in
    let merged =
      if i = 0 then (v0, c0 + c1)
      else if i + 1 = n - 1 then (v1, c0 + c1)
      else
        ( ((v0 *. float_of_int c0) +. (v1 *. float_of_int c1))
          /. float_of_int (c0 + c1),
          c0 + c1 )
    in
    List.concat
      [ Array.to_list (Array.sub arr 0 i);
        [ merged ];
        Array.to_list (Array.sub arr (i + 2) (n - i - 2)) ]
  end

let observe_band table key v =
  if not (Float.is_nan v) && v >= 0. then
    match Hashtbl.find_opt table key with
    | Some b ->
      b.lo <- Float.min b.lo v;
      b.hi <- Float.max b.hi v;
      b.n <- b.n + 1;
      b.buckets <- compact_buckets (insert_bucket v b.buckets)
    | None -> Hashtbl.add table key { lo = v; hi = v; n = 1; buckets = [ (v, 1) ] }

let locked t f =
  Mutex.lock t.mu;
  let r = f () in
  Mutex.unlock t.mu;
  r

let observe_selectivity t var v =
  locked t (fun () -> observe_band t.selectivities var v)

let observe_rows t ~key rows =
  locked t (fun () -> observe_band t.cardinalities key (float_of_int rows))

let band_of table key =
  Option.map
    (fun b -> Interval.make b.lo b.hi)
    (Hashtbl.find_opt table key)

let dist_of_band b =
  Dist.make (List.map (fun (v, c) -> (v, float_of_int c)) b.buckets)

let dist_of table key = Option.map dist_of_band (Hashtbl.find_opt table key)

let selectivity_band t var = locked t (fun () -> band_of t.selectivities var)
let rows_band t key = locked t (fun () -> band_of t.cardinalities key)

let selectivity_dist t var = locked t (fun () -> dist_of t.selectivities var)
let rows_dist t key = locked t (fun () -> dist_of t.cardinalities key)

let bands table =
  Hashtbl.fold (fun k b acc -> (k, Interval.make b.lo b.hi) :: acc) table []
  |> List.sort compare

let dists table =
  Hashtbl.fold (fun k b acc -> (k, dist_of_band b) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let selectivity_bounds t = locked t (fun () -> bands t.selectivities)
let cardinality_bounds t = locked t (fun () -> bands t.cardinalities)

let selectivity_dists t = locked t (fun () -> dists t.selectivities)
let cardinality_dists t = locked t (fun () -> dists t.cardinalities)

let observations t =
  locked t (fun () ->
      let tally table =
        Hashtbl.fold (fun _ b acc -> acc + b.n) table 0
      in
      tally t.selectivities + tally t.cardinalities)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.selectivities;
      Hashtbl.reset t.cardinalities)

(* Cross-cache accumulation ([Plan_cache]'s eviction-surviving side
   table): fold every band of [src] into [dst], observation counts and
   bucket shapes included.  Bands only grow, so merging is commutative
   up to bucket compaction. *)
let absorb ~into src =
  let snapshot =
    locked src (fun () ->
        let dump table =
          Hashtbl.fold (fun k b acc -> (k, (b.lo, b.hi, b.n, b.buckets)) :: acc)
            table []
        in
        (dump src.selectivities, dump src.cardinalities))
  in
  let sels, cards = snapshot in
  locked into (fun () ->
      let file table (key, (lo, hi, n, buckets)) =
        match Hashtbl.find_opt table key with
        | None -> Hashtbl.add table key { lo; hi; n; buckets }
        | Some b ->
          b.lo <- Float.min b.lo lo;
          b.hi <- Float.max b.hi hi;
          b.n <- b.n + n;
          b.buckets <-
            List.fold_left
              (fun acc (v, c) ->
                let rec add = function
                  | [] -> [ (v, c) ]
                  | (bv, bc) :: rest ->
                    if v = bv then (bv, bc + c) :: rest
                    else if v < bv then (v, c) :: (bv, bc) :: rest
                    else (bv, bc) :: add rest
                in
                compact_buckets (add acc))
              b.buckets buckets
      in
      List.iter (file into.selectivities) sels;
      List.iter (file into.cardinalities) cards)
