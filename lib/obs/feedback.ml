module Interval = Dqep_util.Interval

type band = { mutable lo : float; mutable hi : float; mutable n : int }

type t = {
  mu : Mutex.t;
  selectivities : (string, band) Hashtbl.t;
  cardinalities : (string, band) Hashtbl.t;
}

let create () =
  {
    mu = Mutex.create ();
    selectivities = Hashtbl.create 7;
    cardinalities = Hashtbl.create 7;
  }

let observe_band table key v =
  if not (Float.is_nan v) && v >= 0. then
    match Hashtbl.find_opt table key with
    | Some b ->
      b.lo <- Float.min b.lo v;
      b.hi <- Float.max b.hi v;
      b.n <- b.n + 1
    | None -> Hashtbl.add table key { lo = v; hi = v; n = 1 }

let locked t f =
  Mutex.lock t.mu;
  let r = f () in
  Mutex.unlock t.mu;
  r

let observe_selectivity t var v =
  locked t (fun () -> observe_band t.selectivities var v)

let observe_rows t ~key rows =
  locked t (fun () -> observe_band t.cardinalities key (float_of_int rows))

let band_of table key =
  Option.map
    (fun b -> Interval.make b.lo b.hi)
    (Hashtbl.find_opt table key)

let selectivity_band t var = locked t (fun () -> band_of t.selectivities var)
let rows_band t key = locked t (fun () -> band_of t.cardinalities key)

let bands table =
  Hashtbl.fold (fun k b acc -> (k, Interval.make b.lo b.hi) :: acc) table []
  |> List.sort compare

let selectivity_bounds t = locked t (fun () -> bands t.selectivities)
let cardinality_bounds t = locked t (fun () -> bands t.cardinalities)

let observations t =
  locked t (fun () ->
      let tally table =
        Hashtbl.fold (fun _ b acc -> acc + b.n) table 0
      in
      tally t.selectivities + tally t.cardinalities)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.selectivities;
      Hashtbl.reset t.cardinalities)
