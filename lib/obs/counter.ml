(* The closed taxonomy of counters the system maintains.

   Keeping the set closed (a variant, not strings) is what lets a trace
   store its totals in a flat atomic array — incrementing a counter on
   the row engine's per-tuple path costs one atomic add and nothing
   else — and what lets downstream consumers (run_stats, the CLI, the
   trace schema) enumerate every counter without coordination. *)

type t =
  (* storage *)
  | Logical_reads
  | Physical_reads
  | Physical_writes
  | Read_faults
  | Write_faults
  (* execution *)
  | Rows_out
  | Batches_out
  | Spill_partitions
  | Spill_runs
  | Spilled_tuples
  (* resilience *)
  | Attempts
  | Retries
  | Faults_absorbed
  | Budget_aborts
  | Memory_aborts
  | Failovers
  (* governance *)
  | Deadline_aborts
  | Cancellations
  (* session *)
  | Submitted
  | Admitted
  | Completed
  | Failed
  | Shed_queue_full
  | Shed_queue_timeout
  (* checkpointed recovery *)
  | Replans
  | Checkpoints_taken
  | Checkpoint_bytes
  | Resume_hits
  (* static analysis *)
  | Rejected_precheck
  (* serving *)
  | Cache_hit
  | Cache_miss
  | Cache_evicted
  | Cache_invalidated_drift
  | Cache_invalidated_replan
  | Breaker_opened
  | Breaker_closed
  | Shed_breaker_open

let all =
  [
    Logical_reads;
    Physical_reads;
    Physical_writes;
    Read_faults;
    Write_faults;
    Rows_out;
    Batches_out;
    Spill_partitions;
    Spill_runs;
    Spilled_tuples;
    Attempts;
    Retries;
    Faults_absorbed;
    Budget_aborts;
    Memory_aborts;
    Failovers;
    Deadline_aborts;
    Cancellations;
    Submitted;
    Admitted;
    Completed;
    Failed;
    Shed_queue_full;
    Shed_queue_timeout;
    Replans;
    Checkpoints_taken;
    Checkpoint_bytes;
    Resume_hits;
    Rejected_precheck;
    Cache_hit;
    Cache_miss;
    Cache_evicted;
    Cache_invalidated_drift;
    Cache_invalidated_replan;
    Breaker_opened;
    Breaker_closed;
    Shed_breaker_open;
  ]

let count = List.length all

let index = function
  | Logical_reads -> 0
  | Physical_reads -> 1
  | Physical_writes -> 2
  | Read_faults -> 3
  | Write_faults -> 4
  | Rows_out -> 5
  | Batches_out -> 6
  | Spill_partitions -> 7
  | Spill_runs -> 8
  | Spilled_tuples -> 9
  | Attempts -> 10
  | Retries -> 11
  | Faults_absorbed -> 12
  | Budget_aborts -> 13
  | Memory_aborts -> 14
  | Failovers -> 15
  | Deadline_aborts -> 16
  | Cancellations -> 17
  | Submitted -> 18
  | Admitted -> 19
  | Completed -> 20
  | Failed -> 21
  | Shed_queue_full -> 22
  | Shed_queue_timeout -> 23
  | Replans -> 24
  | Checkpoints_taken -> 25
  | Checkpoint_bytes -> 26
  | Resume_hits -> 27
  | Rejected_precheck -> 28
  | Cache_hit -> 29
  | Cache_miss -> 30
  | Cache_evicted -> 31
  | Cache_invalidated_drift -> 32
  | Cache_invalidated_replan -> 33
  | Breaker_opened -> 34
  | Breaker_closed -> 35
  | Shed_breaker_open -> 36

let name = function
  | Logical_reads -> "logical_reads"
  | Physical_reads -> "physical_reads"
  | Physical_writes -> "physical_writes"
  | Read_faults -> "read_faults"
  | Write_faults -> "write_faults"
  | Rows_out -> "rows_out"
  | Batches_out -> "batches_out"
  | Spill_partitions -> "spill_partitions"
  | Spill_runs -> "spill_runs"
  | Spilled_tuples -> "spilled_tuples"
  | Attempts -> "attempts"
  | Retries -> "retries"
  | Faults_absorbed -> "faults_absorbed"
  | Budget_aborts -> "budget_aborts"
  | Memory_aborts -> "memory_aborts"
  | Failovers -> "failovers"
  | Deadline_aborts -> "deadline_aborts"
  | Cancellations -> "cancellations"
  | Submitted -> "submitted"
  | Admitted -> "admitted"
  | Completed -> "completed"
  | Failed -> "failed"
  | Shed_queue_full -> "shed_queue_full"
  | Shed_queue_timeout -> "shed_queue_timeout"
  | Replans -> "replans"
  | Checkpoints_taken -> "checkpoints_taken"
  | Checkpoint_bytes -> "checkpoint_bytes"
  | Resume_hits -> "resume_hits"
  | Rejected_precheck -> "rejected_precheck"
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Cache_evicted -> "cache_evicted"
  | Cache_invalidated_drift -> "cache_invalidated_drift"
  | Cache_invalidated_replan -> "cache_invalidated_replan"
  | Breaker_opened -> "breaker_opened"
  | Breaker_closed -> "breaker_closed"
  | Shed_breaker_open -> "shed_breaker_open"

let of_name s = List.find_opt (fun c -> name c = s) all
let pp ppf c = Format.pp_print_string ppf (name c)
