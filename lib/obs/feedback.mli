(** The per-session observation cache: what execution has taught us
    about this session's parameters and operators.

    Two keyed families of running bands, each band the [\[min, max\]]
    envelope of every value observed so far:

    - {e selectivities}, keyed by selectivity variable name — fed by
      start-up parameter bindings and realized operator selectivities;
    - {e cardinalities}, keyed by a plan node's relation-set key — fed
      by operator taps.

    A band is an observation in the sense of [Interval.refine]: the
    cost layer narrows an env's prior interval for a variable to
    [Interval.refine prior band], so later queries in the session are
    costed against what was actually measured.  Bands only grow, which
    keeps refinement honest — two conflicting observations widen the
    band back toward the prior rather than ping-ponging the refined
    value.

    Thread-safe; session workers observe concurrently. *)

type t

val create : unit -> t

val observe_selectivity : t -> string -> float -> unit
(** Record one realized value of a selectivity variable.  NaN and
    negative values are ignored. *)

val observe_rows : t -> key:string -> int -> unit
(** Record one observed cardinality for an operator, keyed by its
    relation set ([Plan.rels_key]). *)

val selectivity_band : t -> string -> Dqep_util.Interval.t option
val rows_band : t -> string -> Dqep_util.Interval.t option

val selectivity_bounds : t -> (string * Dqep_util.Interval.t) list
(** Every selectivity band, sorted by variable name. *)

val cardinality_bounds : t -> (string * Dqep_util.Interval.t) list

val observations : t -> int
(** Total number of recorded observations (not bands). *)

val clear : t -> unit
