(** The per-session observation cache: what execution has taught us
    about this session's parameters and operators.

    Two keyed families of running histograms.  Each histogram keeps the
    exact [\[min, max\]] envelope of every value observed so far plus at
    most [Dqep_cost.Dist.max_buckets] (value, count) buckets recording
    where inside the envelope the observations fell; the extreme buckets
    always sit exactly at the envelope's ends, so a histogram's hull IS
    its band and every band-shaped consumer behaves as before the
    histogram upgrade:

    - {e selectivities}, keyed by selectivity variable name — fed by
      start-up parameter bindings and realized operator selectivities;
    - {e cardinalities}, keyed by a plan node's relation-set key — fed
      by operator taps.

    A band is an observation in the sense of [Interval.refine]: the
    cost layer narrows an env's prior interval for a variable to
    [Interval.refine prior band], so later queries in the session are
    costed against what was actually measured.  Bands only grow, which
    keeps refinement honest — two conflicting observations widen the
    band back toward the prior rather than ping-ponging the refined
    value.

    Thread-safe; session workers observe concurrently. *)

type t

val create : unit -> t

val observe_selectivity : t -> string -> float -> unit
(** Record one realized value of a selectivity variable.  NaN and
    negative values are ignored. *)

val observe_rows : t -> key:string -> int -> unit
(** Record one observed cardinality for an operator, keyed by its
    relation set ([Plan.rels_key]). *)

val selectivity_band : t -> string -> Dqep_util.Interval.t option
val rows_band : t -> string -> Dqep_util.Interval.t option

val selectivity_dist : t -> string -> Dqep_cost.Dist.t option
(** The variable's observation histogram as a distribution.  Its hull
    equals {!selectivity_band}. *)

val rows_dist : t -> string -> Dqep_cost.Dist.t option

val selectivity_bounds : t -> (string * Dqep_util.Interval.t) list
(** Every selectivity band, sorted by variable name. *)

val cardinality_bounds : t -> (string * Dqep_util.Interval.t) list

val selectivity_dists : t -> (string * Dqep_cost.Dist.t) list
(** Every selectivity histogram, sorted by variable name; hulls equal
    {!selectivity_bounds}.  Feed to [Dqep_cost.Env.refine_dists]. *)

val cardinality_dists : t -> (string * Dqep_cost.Dist.t) list
(** Every cardinality histogram, keyed by relation set; hulls feed
    [Dqep_optimizer.Reoptimize.replan_bands]. *)

val observations : t -> int
(** Total number of recorded observations (not bands). *)

val clear : t -> unit

val absorb : into:t -> t -> unit
(** [absorb ~into src] folds every histogram of [src] into [into]
    (envelopes union, counts add, buckets merge and re-compact).  The
    plan cache uses this to bank a shape's accumulated feedback into an
    eviction-surviving side table. *)
